/**
 * @file
 * Fault-containment and input-validation tests: a throwing run inside
 * a parallel sweep degrades to one failed result slot (process alive,
 * other N-1 results delivered), bounded retry recovers transient
 * failures, the trace cache survives throwing builders and does not
 * let an in-flight build pin it above budget, corrupt trace headers
 * fail with TraceFormatError instead of unbounded allocation, and
 * strict numeric parsing rejects the garbage the C library accepts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <sstream>
#include <thread>

#include "core/sweep.hh"
#include "stats/registry.hh"
#include "trace/generator.hh"
#include "trace/trace_io.hh"
#include "util/error.hh"
#include "util/parse.hh"

namespace storemlp
{
namespace
{

// ---- sweep-engine fault injection ------------------------------------

/** N distinguishable specs (marker = measureInsts). */
std::vector<RunSpec>
markedSpecs(size_t n)
{
    std::vector<RunSpec> specs;
    for (size_t k = 0; k < n; ++k) {
        RunSpec spec;
        spec.profile = WorkloadProfile::testTiny();
        spec.config = SimConfig::defaults();
        spec.config.name = "cfg" + std::to_string(k);
        spec.warmupInsts = 100;
        spec.measureInsts = 1000 + k;
        specs.push_back(spec);
    }
    return specs;
}

/**
 * Fault-injection runner: throws for the spec whose marker equals
 * `failing`, otherwise returns a synthetic output echoing the marker.
 */
SweepOptions
faultingOptions(unsigned jobs, uint64_t failing_marker)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.useTraceCache = false;
    opts.progress = false;
    opts.runOverride = [failing_marker](const RunSpec &spec,
                                        const Trace *) {
        if (spec.measureInsts == failing_marker)
            throw std::runtime_error("injected fault");
        RunOutput out;
        out.sim.instructions = spec.measureInsts;
        return out;
    };
    return opts;
}

/** Wrap bare specs as planned runs and execute them. */
std::vector<RunOutcome>
executeSpecs(SweepEngine &engine, const std::vector<RunSpec> &specs)
{
    std::vector<PlannedRun> planned(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        planned[i].name = specs[i].config.name;
        planned[i].configName = specs[i].config.name;
        planned[i].spec = specs[i];
    }
    return engine.execute(planned);
}

void
expectOneFailureContained(unsigned jobs)
{
    std::vector<RunSpec> specs = markedSpecs(6);
    const size_t failing = 2;
    SweepEngine engine(faultingOptions(jobs, specs[failing].measureInsts),
                       nullptr);
    std::vector<RunOutcome> results = executeSpecs(engine, specs);

    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("slot " + std::to_string(i));
        if (i == failing) {
            EXPECT_FALSE(results[i].ok);
            EXPECT_NE(results[i].errorMessage.find("run 2"),
                      std::string::npos)
                << results[i].errorMessage;
            EXPECT_NE(results[i].errorMessage.find("cfg2"),
                      std::string::npos)
                << results[i].errorMessage;
            EXPECT_NE(results[i].errorMessage.find("injected fault"),
                      std::string::npos)
                << results[i].errorMessage;
        } else {
            EXPECT_TRUE(results[i].ok) << results[i].errorMessage;
            EXPECT_TRUE(results[i].errorMessage.empty());
            EXPECT_EQ(results[i].output.sim.instructions,
                      specs[i].measureInsts);
        }
    }
    EXPECT_EQ(engine.runsSucceeded(), specs.size() - 1);
    EXPECT_EQ(engine.runsFailed(), 1u);
}

TEST(SweepFaults, OneThrowingRunIsContainedJobs1)
{
    expectOneFailureContained(1);
}

TEST(SweepFaults, OneThrowingRunIsContainedJobs4)
{
    expectOneFailureContained(4);
}

TEST(SweepFaults, FailureCountersLandInExportedStats)
{
    std::vector<RunSpec> specs = markedSpecs(3);
    SweepEngine engine(faultingOptions(1, specs[0].measureInsts),
                       nullptr);
    executeSpecs(engine, specs);

    StatsRegistry reg;
    engine.exportStats(reg); // must not crash on the null cache
    EXPECT_EQ(reg.getCounter("sweep.runs.ok"), 2u);
    EXPECT_EQ(reg.getCounter("sweep.runs.failed"), 1u);
    EXPECT_EQ(reg.getCounter("sweep.traceCache.bytes"), 0u);
}

TEST(SweepFaults, BoundedRetryRecoversTransientFailure)
{
    auto remaining = std::make_shared<std::atomic<int>>(2);
    SweepOptions opts;
    opts.jobs = 1;
    opts.useTraceCache = false;
    opts.progress = false;
    opts.maxAttempts = 3;
    opts.runOverride = [remaining](const RunSpec &spec, const Trace *) {
        if (remaining->fetch_sub(1) > 0)
            throw std::runtime_error("transient");
        RunOutput out;
        out.sim.instructions = spec.measureInsts;
        return out;
    };
    SweepEngine engine(opts, nullptr);
    std::vector<RunSpec> specs = markedSpecs(1);
    std::vector<RunOutcome> results = executeSpecs(engine, specs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].errorMessage;
    EXPECT_EQ(results[0].attempts, 3u);
    EXPECT_TRUE(results[0].errorMessage.empty());
    EXPECT_EQ(engine.runRetries(), 2u);
}

TEST(SweepFaults, RetryBudgetExhaustedReportsFailure)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.useTraceCache = false;
    opts.progress = false;
    opts.maxAttempts = 2;
    opts.runOverride = [](const RunSpec &, const Trace *) -> RunOutput {
        throw std::runtime_error("deterministic fault");
    };
    SweepEngine engine(opts, nullptr);
    std::vector<RunSpec> specs = markedSpecs(1);
    std::vector<RunOutcome> results = executeSpecs(engine, specs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_NE(results[0].errorMessage.find("deterministic fault"),
              std::string::npos);
    EXPECT_EQ(engine.runRetries(), 1u);
}

// Pins the deprecated runOutputs -> run -> execute shim chain
// (removal next PR): throwing on the first failed run is the old
// contract callers may still lean on.
TEST(SweepFaults, RunOutputsThrowsRatherThanReturningPartialSilently)
{
    std::vector<RunSpec> specs = markedSpecs(3);
    SweepEngine engine(faultingOptions(1, specs[1].measureInsts),
                       nullptr);
    EXPECT_THROW(engine.runOutputs(specs), SimError);
}

TEST(SweepFaults, RunTasksCapturesPerTaskErrorsAndRunsEveryTask)
{
    std::vector<int> done(8, 0);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < done.size(); ++i) {
        tasks.push_back([&done, i] {
            done[i] = 1;
            if (i == 3)
                throw std::runtime_error("task blew up");
        });
    }
    std::vector<TaskStatus> statuses = parallelForEach(tasks, 4);

    ASSERT_EQ(statuses.size(), tasks.size());
    for (size_t i = 0; i < done.size(); ++i)
        EXPECT_EQ(done[i], 1) << "task " << i << " never ran";
    for (size_t i = 0; i < statuses.size(); ++i) {
        if (i == 3) {
            EXPECT_FALSE(statuses[i].ok);
            EXPECT_NE(statuses[i].errorMessage.find("task blew up"),
                      std::string::npos);
            EXPECT_NE(statuses[i].errorMessage.find("run 3"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(statuses[i].ok);
        }
    }
}

// ---- trace-cache fault behaviour -------------------------------------

Trace
tinyTrace(uint64_t seed, uint64_t records)
{
    SyntheticTraceGenerator gen(WorkloadProfile::testTiny(), seed, 0);
    return gen.generate(records);
}

TEST(TraceCacheFaults, ThrowingBuilderDoesNotPoisonTheKey)
{
    TraceCache cache(1 << 20);
    EXPECT_THROW(cache.getOrBuild(
                     "k",
                     []() -> Trace {
                         throw std::runtime_error("builder fault");
                     }),
                 std::runtime_error);

    // The failed entry is gone: the next request rebuilds (a miss,
    // not a hit blocking forever on a dead future).
    bool hit = true;
    auto trace = cache.getOrBuild(
        "k", [] { return tinyTrace(1, 500); }, &hit);
    EXPECT_FALSE(hit);
    EXPECT_GT(trace->size(), 0u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(TraceCacheFaults, InFlightBuildDoesNotPinCacheAboveBudget)
{
    // Budget fits ~one 4000-record trace. "inflight" (LRU tail) never
    // completes while "a" and "b" land; eviction must skip past the
    // pending entry and reclaim "a" instead of giving up at the tail.
    TraceCache cache(5000 * sizeof(TraceRecord));
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::thread builder([&] {
        cache.getOrBuild("inflight", [&] {
            gate.wait();
            return tinyTrace(1, 100);
        });
    });
    while (cache.stats().misses < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    cache.getOrBuild("a", [] { return tinyTrace(2, 4000); });
    cache.getOrBuild("b", [] { return tinyTrace(3, 4000); });

    TraceCacheStats stats = cache.stats();
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_LE(stats.bytes, 5000 * sizeof(TraceRecord));

    release.set_value();
    builder.join();

    // The pending build completed normally after the eviction pass.
    bool hit = false;
    cache.getOrBuild(
        "inflight", [] { return tinyTrace(1, 100); }, &hit);
    EXPECT_TRUE(hit);
}

// ---- trace format validation -----------------------------------------

std::string
v1Header(uint64_t count)
{
    std::string s = "SMLPTRC1";
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((count >> (8 * i)) & 0xff));
    return s;
}

std::string
v2Header(uint64_t count)
{
    std::string s = "SMLPTRC2";
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((count >> (8 * i)) & 0xff));
    return s;
}

void
expectTraceError(const std::string &bytes, const std::string &needle)
{
    std::istringstream is(bytes);
    try {
        readTrace(is);
        FAIL() << "expected TraceFormatError (" << needle << ")";
    } catch (const TraceFormatError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceFormat, CorruptV1CountRejectedWithoutAllocation)
{
    // A corrupt 8-byte count (2^60 records) must be rejected against
    // the actual stream size before reserve(), not OOM the process.
    expectTraceError(v1Header(uint64_t{1} << 60),
                     "exceeds stream capacity");
}

TEST(TraceFormat, V1CountLargerThanBodyRejected)
{
    std::string bytes = v1Header(3);
    bytes.append(2 * 22, '\0'); // only two records present
    expectTraceError(bytes, "exceeds stream capacity");
}

TEST(TraceFormat, CorruptV2CountRejectedWithoutAllocation)
{
    expectTraceError(v2Header(UINT64_MAX), "exceeds stream capacity");
}

TEST(TraceFormat, BadMagicRejected)
{
    expectTraceError("NOTATRACE_______", "bad trace magic");
    expectTraceError("", "bad trace magic");
}

TEST(TraceFormat, TruncatedHeaderRejected)
{
    expectTraceError(std::string("SMLPTRC1") + "\x01\x02",
                     "truncated trace header");
}

TEST(TraceFormat, V1InvalidInstructionClassRejected)
{
    std::string bytes = v1Header(1);
    std::string record(22, '\0');
    record[16] = static_cast<char>(0xff); // cls out of range
    bytes += record;
    expectTraceError(bytes, "invalid instruction class");
}

TEST(TraceFormat, V2TruncatedVarintRejected)
{
    // One record, control byte expects a pc delta varint that never
    // arrives (class Alu, no seq-pc bit).
    std::string bytes = v2Header(1);
    bytes.push_back(0x00);
    expectTraceError(bytes, "truncated varint");
}

TEST(TraceFormat, V2OverlongVarintRejected)
{
    std::string bytes = v2Header(1);
    bytes.push_back(0x00);
    bytes.append(11, static_cast<char>(0x80)); // never terminates
    expectTraceError(bytes, "overlong varint");
}

TEST(TraceFormat, V2InvalidInstructionClassRejected)
{
    std::string bytes = v2Header(1);
    bytes.push_back(0x0f); // cls bits 15 >= NumClasses
    expectTraceError(bytes, "invalid instruction class");
}

TEST(TraceFormat, V2TruncatedRegisterBlockRejected)
{
    std::string bytes = v2Header(1);
    // Alu, sequential pc, register block present — but only two of
    // the four register bytes follow.
    bytes.push_back(0x30);
    bytes.push_back(0x01);
    bytes.push_back(0x02);
    expectTraceError(bytes, "truncated register block");
}

TEST(TraceFormat, V2TruncatedFlagsByteRejected)
{
    std::string bytes = v2Header(1);
    bytes.push_back(0x50); // Alu, sequential pc, flags byte present
    expectTraceError(bytes, "truncated flags byte");
}

TEST(TraceFormat, RoundTripStillWorksAfterValidation)
{
    Trace trace = tinyTrace(7, 2000);
    std::ostringstream os1, os2;
    writeTrace(os1, trace);
    writeTraceCompressed(os2, trace);

    std::istringstream is1(os1.str()), is2(os2.str());
    EXPECT_EQ(readTrace(is1).size(), trace.size());
    EXPECT_EQ(readTrace(is2).size(), trace.size());
}

// ---- strict numeric parsing ------------------------------------------

TEST(StrictParse, RejectsEverythingStrtoullAccepts)
{
    EXPECT_FALSE(parseU64Strict("").has_value());
    EXPECT_FALSE(parseU64Strict("abc").has_value());
    EXPECT_FALSE(parseU64Strict("10k").has_value());
    EXPECT_FALSE(parseU64Strict("-1").has_value());
    EXPECT_FALSE(parseU64Strict("+5").has_value());
    EXPECT_FALSE(parseU64Strict(" 5").has_value());
    EXPECT_FALSE(parseU64Strict("5 ").has_value());
    EXPECT_FALSE(parseU64Strict("0x10").has_value());
    EXPECT_FALSE(parseU64Strict("1e6").has_value());
    // 2^64 overflows by one digit.
    EXPECT_FALSE(parseU64Strict("18446744073709551616").has_value());

    EXPECT_EQ(parseU64Strict("0"), uint64_t{0});
    EXPECT_EQ(parseU64Strict("42"), uint64_t{42});
    EXPECT_EQ(parseU64Strict("18446744073709551615"), UINT64_MAX);
}

class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : _name(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            _had = true;
            _old = old;
        }
    }
    ~EnvGuard()
    {
        if (_had)
            ::setenv(_name, _old.c_str(), 1);
        else
            ::unsetenv(_name);
    }

  private:
    const char *_name;
    bool _had = false;
    std::string _old;
};

TEST(StrictParse, EnvU64StrictContract)
{
    EnvGuard guard("STOREMLP_TEST_ENV");
    ::unsetenv("STOREMLP_TEST_ENV");
    EXPECT_EQ(envU64Strict("STOREMLP_TEST_ENV", 7), 7u);

    ::setenv("STOREMLP_TEST_ENV", "12", 1);
    EXPECT_EQ(envU64Strict("STOREMLP_TEST_ENV", 7), 12u);

    ::setenv("STOREMLP_TEST_ENV", "12abc", 1);
    EXPECT_THROW(envU64Strict("STOREMLP_TEST_ENV", 7), ConfigError);

    ::setenv("STOREMLP_TEST_ENV", "5", 1);
    EXPECT_THROW(envU64Strict("STOREMLP_TEST_ENV", 7, 10, 20),
                 ConfigError);
}

TEST(StrictParse, SweepJobsEnvIsValidated)
{
    EnvGuard guard("STOREMLP_JOBS");
    ::setenv("STOREMLP_JOBS", "four", 1);
    EXPECT_THROW(SweepEngine::defaultJobs(), ConfigError);
    ::setenv("STOREMLP_JOBS", "0", 1);
    EXPECT_THROW(SweepEngine::defaultJobs(), ConfigError);
    ::setenv("STOREMLP_JOBS", "3", 1);
    EXPECT_EQ(SweepEngine::defaultJobs(), 3u);
}

TEST(StrictParse, TraceCacheBudgetEnvIsValidated)
{
    EnvGuard guard("STOREMLP_TRACE_CACHE_MB");
    ::setenv("STOREMLP_TRACE_CACHE_MB", "2GB", 1);
    EXPECT_THROW(TraceCache::defaultMaxBytes(), ConfigError);
    ::setenv("STOREMLP_TRACE_CACHE_MB", "64", 1);
    EXPECT_EQ(TraceCache::defaultMaxBytes(),
              uint64_t{64} * 1024 * 1024);
}

// ---- null-cache engine -----------------------------------------------

TEST(SweepFaults, NullCacheEngineRunsAndExportsZeroedCacheStats)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.useTraceCache = false;
    opts.progress = false;
    opts.runOverride = [](const RunSpec &spec, const Trace *) {
        RunOutput out;
        out.sim.instructions = spec.measureInsts;
        return out;
    };
    SweepEngine engine(opts, nullptr);
    EXPECT_FALSE(engine.hasTraceCache());

    std::vector<RunSpec> specs = markedSpecs(2);
    std::vector<RunOutcome> results = executeSpecs(engine, specs);
    EXPECT_TRUE(results[0].ok && results[1].ok);

    StatsRegistry reg;
    EXPECT_NO_THROW(engine.exportStats(reg));
    EXPECT_EQ(reg.getCounter("sweep.traceCache.hits"), 0u);
    EXPECT_EQ(reg.getCounter("sweep.runs.ok"), 2u);
}

} // namespace
} // namespace storemlp
