/**
 * @file
 * Shared helpers for epoch-engine unit tests: a rig that pre-warms
 * the caches for every address/pc except designated "missing" ones,
 * so hand-written traces have fully controlled miss behaviour.
 */

#ifndef STOREMLP_TESTS_SIM_TEST_UTIL_HH
#define STOREMLP_TESTS_SIM_TEST_UTIL_HH

#include <initializer_list>
#include <unordered_set>

#include "coherence/chip.hh"
#include "core/mlp_sim.hh"
#include "core/runner.hh"
#include "trace/lock_detector.hh"
#include "trace/trace.hh"
#include "trace/trace_source.hh"

namespace storemlp::test
{

/**
 * Materialized-trace run: buildTrace + MaterializedSource, byte for
 * byte what the removed Runner::run(spec) convenience overload did.
 * Tests that don't exercise streaming go through here.
 */
inline RunOutput
runMaterialized(const RunSpec &spec)
{
    Trace trace = Runner::buildTrace(spec);
    MaterializedSource src(trace);
    return Runner::run(spec, src);
}

/** Same, over a prebuilt trace (must already reflect the model). */
inline RunOutput
runMaterialized(const RunSpec &spec, const Trace &trace)
{
    MaterializedSource src(trace);
    return Runner::run(spec, src);
}

/** Addresses guaranteed to be off-chip misses (never warmed). */
inline uint64_t
missAddr(unsigned k)
{
    return 0x90000000ULL + k * 64;
}

/** A pc line guaranteed to be an off-chip instruction miss. */
inline uint64_t
missPc(unsigned k)
{
    return 0xA0000000ULL + k * 64;
}

/** A warm (always L2-hit) data address. */
inline uint64_t
warmAddr(unsigned k)
{
    return 0x100000ULL + k * 64;
}

/**
 * Test rig: one chip, optional SMAC, caches pre-warmed for everything
 * the trace touches except addresses/pcs in the miss ranges above.
 */
class SimRig
{
  public:
    explicit SimRig(std::optional<SmacConfig> smac = std::nullopt)
        : chip(HierarchyConfig{}, 0, smac)
    {
    }

    /** Warm every pc and address outside the miss ranges. */
    void
    warmFor(const Trace &trace)
    {
        for (const auto &r : trace.records()) {
            if (r.pc < 0xA0000000ULL)
                chip.instFetch(r.pc);
            if (isMemClass(r.cls) &&
                !(r.addr >= 0x90000000ULL && r.addr < 0xA0000000ULL)) {
                chip.load(r.addr);
            }
        }
        chip.resetStats();
    }

    /** Analyze locks, warm, run, and return the results. */
    SimResult
    run(const Trace &trace, const SimConfig &cfg)
    {
        locks = LockDetector().analyze(trace);
        warmFor(trace);
        MlpSimulator sim(cfg, chip, &locks);
        return sim.run(trace);
    }

    /** Run without warming (for cold-cache scenarios). */
    SimResult
    runCold(const Trace &trace, const SimConfig &cfg)
    {
        locks = LockDetector().analyze(trace);
        MlpSimulator sim(cfg, chip, &locks);
        return sim.run(trace);
    }

    ChipNode chip;
    LockAnalysis locks;
};

/** Append `n` filler ALU instructions (forces window-full stalls). */
inline TraceBuilder &
fillers(TraceBuilder &b, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        b.alu();
    return b;
}

/** Configuration used by the paper's Examples 1-4: SB=2, SQ=2, Sp0. */
inline SimConfig
exampleConfig()
{
    SimConfig cfg;
    cfg.storeBufferSize = 2;
    cfg.storeQueueSize = 2;
    cfg.storePrefetch = StorePrefetch::None;
    cfg.cpiOnChip = 1.0;
    return cfg;
}

} // namespace storemlp::test

#endif // STOREMLP_TESTS_SIM_TEST_UTIL_HH
