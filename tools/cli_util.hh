/**
 * @file
 * Minimal command-line parsing shared by the storemlp tools: flags of
 * the form --key value (or --key for booleans), with typed accessors
 * and an automatic usage dump.
 */

#ifndef STOREMLP_TOOLS_CLI_UTIL_HH
#define STOREMLP_TOOLS_CLI_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace storemlp::tools
{

/** Parsed --key value arguments. */
class Cli
{
  public:
    Cli(int argc, char **argv, std::string usage)
        : _prog(argv[0]), _usage(std::move(usage))
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0) {
                fail("unexpected argument '" + arg + "'");
            }
            std::string key = arg.substr(2);
            if (key == "help") {
                std::cout << "usage: " << _prog << "\n" << _usage;
                std::exit(0);
            }
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                _args[key] = argv[++i];
            } else {
                _args[key] = "1"; // boolean flag
            }
        }
    }

    bool has(const std::string &key) const { return _args.count(key); }

    std::string
    str(const std::string &key, const std::string &def) const
    {
        auto it = _args.find(key);
        return it == _args.end() ? def : it->second;
    }

    uint64_t
    num(const std::string &key, uint64_t def) const
    {
        auto it = _args.find(key);
        return it == _args.end()
            ? def
            : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    bool flag(const std::string &key) const { return has(key); }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        std::cerr << _prog << ": " << msg << "\nusage: " << _prog
                  << "\n" << _usage;
        std::exit(2);
    }

  private:
    std::string _prog;
    std::string _usage;
    std::map<std::string, std::string> _args;
};

/** Resolve a workload name to a profile. */
inline WorkloadProfile
workloadByName(const Cli &cli, const std::string &name)
{
    if (name == "database")
        return WorkloadProfile::database();
    if (name == "tpcw")
        return WorkloadProfile::tpcw();
    if (name == "specjbb")
        return WorkloadProfile::specjbb();
    if (name == "specweb")
        return WorkloadProfile::specweb();
    cli.fail("unknown workload '" + name +
             "' (database|tpcw|specjbb|specweb)");
}

} // namespace storemlp::tools

#endif // STOREMLP_TOOLS_CLI_UTIL_HH
