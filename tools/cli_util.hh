/**
 * @file
 * Declarative command-line parsing shared by the storemlp tools.
 *
 * Each tool declares its flags as a table of FlagSpec entries; the
 * parser validates against the table (unknown flags are rejected),
 * accepts both `--key value` and `--key=value`, and generates the
 * usage text from the table so help stays in sync with what is
 * actually parsed. Flags common to several tools (`--jobs`, `--seed`,
 * `--format`, `--out`, run lengths) are shared constants so spelling
 * and help text are identical everywhere.
 */

#ifndef STOREMLP_TOOLS_CLI_UTIL_HH
#define STOREMLP_TOOLS_CLI_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trace/workload.hh"
#include "util/error.hh"
#include "util/parse.hh"

namespace storemlp::tools
{

/**
 * One command-line flag. `arg` is the value placeholder shown in the
 * usage text; an empty `arg` makes the flag boolean, and an `arg`
 * starting with '[' (e.g. "[=v4]") makes the value optional: the flag
 * may appear bare or as `--key=value`, and never consumes the next
 * argv token. Help text may contain newlines; continuation lines are
 * indented under the help column.
 */
struct FlagSpec
{
    std::string key;  ///< without the leading "--"
    std::string arg;  ///< value placeholder; empty = boolean flag
    std::string help; ///< one-line description
};

// ---- flags shared across tools (identical spelling + help) ----
inline const FlagSpec kSeedFlag{"seed", "N", "RNG seed (default 42)"};
inline const FlagSpec kJobsFlag{
    "jobs", "N",
    "worker threads (default: STOREMLP_JOBS, else hardware "
    "concurrency)"};
inline const FlagSpec kFormatFlag{
    "format", "text|json|csv", "output format (default text)"};
inline const FlagSpec kOutFlag{
    "out", "PATH", "write output to PATH instead of stdout"};
inline const FlagSpec kWarmupFlag{
    "warmup", "N", "warmup instructions (default 600000)"};
inline const FlagSpec kMeasureFlag{
    "measure", "N", "measured instructions (default 1000000)"};
inline const FlagSpec kChunkInstsFlag{
    "chunk-insts", "N",
    "streaming chunk size in instructions (default 65536);\n"
    "results are identical for every chunk size"};
inline const FlagSpec kModelFlag{
    "model", "NAME|key=val,...",
    "memory model: preset (pc|wc|rmo|wmm|sc) or descriptor\n"
    "key=val list, e.g. pc,coalesce=none (default pc)"};

/** Parsed arguments, validated against a FlagSpec table. */
class Cli
{
  public:
    Cli(int argc, char **argv, std::vector<FlagSpec> flags)
        : _prog(argv[0]), _flags(std::move(flags))
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::cout << usage();
                std::exit(0);
            }
            if (arg.rfind("--", 0) != 0)
                fail("unexpected argument '" + arg + "'");
            std::string body = arg.substr(2);
            size_t eq = body.find('=');
            std::string key =
                eq == std::string::npos ? body : body.substr(0, eq);
            const FlagSpec *spec = find(key);
            if (!spec)
                fail("unknown flag '--" + key + "'");
            if (!spec->arg.empty() && spec->arg[0] == '[') {
                // Optional value: bare or --key=value only.
                _args[key] = eq == std::string::npos
                    ? std::string()
                    : body.substr(eq + 1);
            } else if (!spec->arg.empty()) {
                if (eq != std::string::npos) {
                    _args[key] = body.substr(eq + 1);
                } else if (i + 1 < argc) {
                    _args[key] = argv[++i];
                } else {
                    fail("--" + key + " requires a value (" +
                         spec->arg + ")");
                }
            } else {
                if (eq != std::string::npos)
                    fail("--" + key + " does not take a value");
                _args[key] = "1";
            }
        }
    }

    bool has(const std::string &key) const { return _args.count(key); }

    std::string
    str(const std::string &key, const std::string &def) const
    {
        auto it = _args.find(key);
        return it == _args.end() ? def : it->second;
    }

    /**
     * Numeric flag value, strictly validated: `--seed abc` and
     * `--warmup 10k` are usage errors (exit 2), not silent zeros
     * or truncations.
     */
    uint64_t
    num(const std::string &key, uint64_t def) const
    {
        auto it = _args.find(key);
        if (it == _args.end())
            return def;
        std::optional<uint64_t> v = parseU64Strict(it->second);
        if (!v) {
            fail("bad --" + key + " value '" + it->second +
                 "': expected an unsigned decimal integer");
        }
        return *v;
    }

    /** Floating-point flag value, strictly validated like num(). */
    double
    fnum(const std::string &key, double def) const
    {
        auto it = _args.find(key);
        if (it == _args.end())
            return def;
        std::optional<double> v = parseDoubleStrict(it->second);
        if (!v) {
            fail("bad --" + key + " value '" + it->second +
                 "': expected a decimal number");
        }
        return *v;
    }

    bool flag(const std::string &key) const { return has(key); }

    std::string
    usage() const
    {
        std::string out = "usage: " + _prog + " [flags]\n";
        for (const FlagSpec &f : _flags) {
            std::string head = "  --" + f.key;
            if (!f.arg.empty())
                head += f.arg[0] == '[' ? f.arg : " " + f.arg;
            if (head.size() < 24)
                head.append(24 - head.size(), ' ');
            else
                head += "  ";
            out += head;
            for (char c : f.help) {
                out += c;
                if (c == '\n')
                    out.append(24, ' ');
            }
            out += '\n';
        }
        out += "  --help                  show this message\n";
        return out;
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        std::cerr << _prog << ": " << msg << "\n" << usage();
        std::exit(2);
    }

  private:
    const FlagSpec *
    find(const std::string &key) const
    {
        for (const FlagSpec &f : _flags) {
            if (f.key == key)
                return &f;
        }
        return nullptr;
    }

    std::string _prog;
    std::vector<FlagSpec> _flags;
    std::map<std::string, std::string> _args;
};

/**
 * Run a tool's main body under the simulator error contract: a
 * SimError (bad trace file, bad config, failed run, bad environment
 * variable) exits 1 with a one-line diagnostic; anything else escaping
 * is an internal bug and exits 70 so scripts can tell the two apart.
 * Usage errors exit 2 via Cli::fail before the body ever runs.
 */
inline int
runTool(const char *prog, int (*body)(int, char **), int argc,
        char **argv)
{
    try {
        return body(argc, argv);
    } catch (const SimError &e) {
        std::cerr << prog << ": error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << prog << ": internal error: " << e.what() << "\n";
        return 70;
    }
}

/** Output format selected by the shared --format flag. */
enum class OutFormat
{
    Text,
    Json,
    Csv
};

/** Parse --format (default text). */
inline OutFormat
outFormat(const Cli &cli)
{
    std::string f = cli.str("format", "");
    if (f.empty())
        return OutFormat::Text;
    if (f == "text")
        return OutFormat::Text;
    if (f == "json")
        return OutFormat::Json;
    if (f == "csv")
        return OutFormat::Csv;
    cli.fail("bad --format '" + f + "' (text|json|csv)");
}

/**
 * Destination for the shared --out flag: the named file when given,
 * stdout otherwise. Dying with a clear error on an unopenable path
 * beats a run whose artifact silently went nowhere.
 */
class OutputSink
{
  public:
    explicit OutputSink(const Cli &cli)
    {
        if (cli.has("out")) {
            std::string path = cli.str("out", "");
            _file.open(path);
            if (!_file)
                cli.fail("cannot open --out file '" + path + "'");
        }
    }

    std::ostream &stream()
    {
        return _file.is_open() ? _file : std::cout;
    }

  private:
    std::ofstream _file;
};

/**
 * Shared run-length parsing: --warmup/--measure/--seed with the
 * standard tool defaults (600K / 1M / 42).
 */
inline void
applyRunLengths(const Cli &cli, uint64_t &warmup, uint64_t &measure,
                uint64_t &seed)
{
    warmup = cli.num("warmup", 600 * 1000);
    measure = cli.num("measure", 1000 * 1000);
    seed = cli.num("seed", 42);
}

/** Resolve a workload name to a profile. */
inline WorkloadProfile
workloadByName(const Cli &cli, const std::string &name)
{
    if (name == "database")
        return WorkloadProfile::database();
    if (name == "tpcw")
        return WorkloadProfile::tpcw();
    if (name == "specjbb")
        return WorkloadProfile::specjbb();
    if (name == "specweb")
        return WorkloadProfile::specweb();
    cli.fail("unknown workload '" + name +
             "' (database|tpcw|specjbb|specweb)");
}

} // namespace storemlp::tools

#endif // STOREMLP_TOOLS_CLI_UTIL_HH
