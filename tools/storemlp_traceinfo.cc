/**
 * @file
 * storemlp_traceinfo: inspect a binary trace file — instruction mix,
 * detected critical sections, and an optional record dump.
 *
 *   storemlp_traceinfo --in trace.trc [--dump 20]
 */

#include <iomanip>
#include <iostream>

#include "cli_util.hh"
#include "stats/stats_json.hh"
#include "trace/lock_detector.hh"
#include "trace/trace_io.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

int
toolMain(int argc, char **argv)
{
    Cli cli(argc, argv, {
        {"in", "PATH", "trace file (required)"},
        {"dump", "N", "print the first N records (text only)"},
        kFormatFlag, kOutFlag,
    });
    if (!cli.has("in"))
        cli.fail("--in is required");

    Trace trace;
    try {
        trace = readTraceFile(cli.str("in", ""));
    } catch (const TraceFormatError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    Trace::Mix mix = trace.mix();
    LockAnalysis locks = LockDetector().analyze(trace);
    uint64_t total_len = 0;
    for (const auto &p : locks.pairs)
        total_len += p.releaseIdx - p.acquireIdx;

    OutFormat fmt = outFormat(cli);
    OutputSink sink(cli);
    std::ostream &os = sink.stream();

    if (fmt != OutFormat::Text) {
        StatsMeta meta = {
            {"tool", "storemlp_traceinfo"},
            {"file", cli.str("in", "")},
        };
        StatsRegistry reg;
        reg.counter("trace.records", mix.total);
        reg.counter("trace.loads", mix.loads);
        reg.counter("trace.stores", mix.stores);
        reg.counter("trace.branches", mix.branches);
        reg.counter("trace.atomics", mix.atomics);
        reg.counter("trace.barriers", mix.barriers);
        reg.counter("trace.criticalSections", locks.pairs.size());
        reg.scalar("trace.meanCriticalSectionLen",
                   locks.pairs.empty()
                       ? 0.0
                       : static_cast<double>(total_len) /
                             static_cast<double>(locks.pairs.size()));
        if (fmt == OutFormat::Json)
            writeStatsJson(os, reg, meta, /*pretty=*/true);
        else
            writeStatsCsv(os, reg, meta);
        return 0;
    }

    double n = std::max<double>(1.0, static_cast<double>(mix.total));
    os << "records:  " << mix.total << "\n"
       << std::fixed << std::setprecision(2)
       << "loads:    " << mix.loads << " ("
       << 100.0 * mix.loads / n << "%)\n"
       << "stores:   " << mix.stores << " ("
       << 100.0 * mix.stores / n << "%)\n"
       << "branches: " << mix.branches << " ("
       << 100.0 * mix.branches / n << "%)\n"
       << "atomics:  " << mix.atomics << "\n"
       << "barriers: " << mix.barriers << "\n";

    os << "critical sections: " << locks.pairs.size() << "\n";
    if (!locks.pairs.empty()) {
        os << "mean critical-section length: "
           << static_cast<double>(total_len) /
                  static_cast<double>(locks.pairs.size())
           << " instructions\n";
    }

    uint64_t dump = cli.num("dump", 0);
    for (uint64_t i = 0; i < dump && i < trace.size(); ++i) {
        const TraceRecord &r = trace[i];
        os << std::setw(6) << i << "  0x" << std::hex
           << r.pc << std::dec << "  " << std::setw(6)
           << instClassName(r.cls);
        if (isMemClass(r.cls))
            os << "  addr=0x" << std::hex << r.addr << std::dec;
        if (r.cls == InstClass::Branch)
            os << (r.taken() ? "  taken" : "  not-taken");
        if (r.lockAcquire())
            os << "  [acquire]";
        if (r.lockRelease())
            os << "  [release]";
        os << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
