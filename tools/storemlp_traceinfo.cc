/**
 * @file
 * storemlp_traceinfo: inspect a binary trace file — instruction mix,
 * detected critical sections, and an optional record dump.
 *
 *   storemlp_traceinfo --in trace.trc [--dump 20]
 */

#include <iomanip>
#include <iostream>

#include "cli_util.hh"
#include "trace/lock_detector.hh"
#include "trace/trace_io.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

const char *kUsage =
    "  --in PATH     trace file (required)\n"
    "  --dump N      print the first N records\n";

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, kUsage);
    if (!cli.has("in"))
        cli.fail("--in is required");

    Trace trace;
    try {
        trace = readTraceFile(cli.str("in", ""));
    } catch (const TraceFormatError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    Trace::Mix mix = trace.mix();
    double n = std::max<double>(1.0, static_cast<double>(mix.total));
    std::cout << "records:  " << mix.total << "\n"
              << std::fixed << std::setprecision(2)
              << "loads:    " << mix.loads << " ("
              << 100.0 * mix.loads / n << "%)\n"
              << "stores:   " << mix.stores << " ("
              << 100.0 * mix.stores / n << "%)\n"
              << "branches: " << mix.branches << " ("
              << 100.0 * mix.branches / n << "%)\n"
              << "atomics:  " << mix.atomics << "\n"
              << "barriers: " << mix.barriers << "\n";

    LockAnalysis locks = LockDetector().analyze(trace);
    std::cout << "critical sections: " << locks.pairs.size() << "\n";
    if (!locks.pairs.empty()) {
        uint64_t total_len = 0;
        for (const auto &p : locks.pairs)
            total_len += p.releaseIdx - p.acquireIdx;
        std::cout << "mean critical-section length: "
                  << static_cast<double>(total_len) /
                         static_cast<double>(locks.pairs.size())
                  << " instructions\n";
    }

    uint64_t dump = cli.num("dump", 0);
    for (uint64_t i = 0; i < dump && i < trace.size(); ++i) {
        const TraceRecord &r = trace[i];
        std::cout << std::setw(6) << i << "  0x" << std::hex
                  << r.pc << std::dec << "  " << std::setw(6)
                  << instClassName(r.cls);
        if (isMemClass(r.cls))
            std::cout << "  addr=0x" << std::hex << r.addr << std::dec;
        if (r.cls == InstClass::Branch)
            std::cout << (r.taken() ? "  taken" : "  not-taken");
        if (r.lockAcquire())
            std::cout << "  [acquire]";
        if (r.lockRelease())
            std::cout << "  [release]";
        std::cout << "\n";
    }
    return 0;
}
