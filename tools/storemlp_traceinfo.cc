/**
 * @file
 * storemlp_traceinfo: inspect a binary trace file. The default report
 * comes from the container header alone — record count, file bytes,
 * format version, profile fingerprint — without decoding a single
 * record, so it is O(1) for a multi-gigabyte trace. `--full` streams
 * the records (O(chunk) resident) to add the instruction mix and the
 * detected critical sections; `--dump N` prints the first N records.
 *
 *   storemlp_traceinfo --in trace.trc [--full] [--dump 20]
 */

#include <iomanip>
#include <iostream>

#include "cli_util.hh"
#include "stats/stats_json.hh"
#include "trace/lock_detector.hh"
#include "trace/trace_file_source.hh"
#include "trace/trace_io.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

const char *
bodyFormatName(uint32_t fmt)
{
    switch (fmt) {
      case 1:
        return "fixed";
      case 2:
        return "delta";
      case 3:
        return "chunked";
      default:
        return "unknown";
    }
}

/** Bytes the same records would occupy in the fixed-width v1 container. */
uint64_t
v1EquivalentBytes(uint64_t records)
{
    return records * 22 + 16;
}

int
toolMain(int argc, char **argv)
{
    Cli cli(argc, argv, {
        {"in", "PATH", "trace file (required)"},
        {"full", "",
         "decode the records (streamed): instruction mix and\n"
         "critical-section analysis"},
        {"dump", "N", "print the first N records (text only)"},
        kChunkInstsFlag,
        kFormatFlag, kOutFlag,
    });
    if (!cli.has("in"))
        cli.fail("--in is required");
    std::string path = cli.str("in", "");
    uint64_t dump = cli.num("dump", 0);
    bool full = cli.flag("full");

    TraceFileInfo info;
    try {
        info = probeTraceFile(path);
    } catch (const TraceFormatError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    // Mix and lock analysis decode the stream, so they are opt-in;
    // the header probe above is the whole cost of the default report.
    Trace::Mix mix;
    LockAnalysis locks;
    uint64_t total_len = 0;
    std::optional<StreamingFileSource> src;
    if (full || dump) {
        try {
            src.emplace(path, cli.num("chunk-insts", 0));
        } catch (const TraceFormatError &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 1;
        }
    }
    if (full) {
        mix.total = info.records;
        forEachRecord(*src, 0, info.records, [&](const TraceRecord &r) {
            if (r.cls == InstClass::AtomicCas ||
                r.cls == InstClass::StoreCond ||
                r.cls == InstClass::LoadLocked) {
                ++mix.atomics;
            }
            if (isLoadClass(r.cls))
                ++mix.loads;
            if (isStoreClass(r.cls))
                ++mix.stores;
            if (r.cls == InstClass::Branch)
                ++mix.branches;
            if (isBarrierClass(r.cls))
                ++mix.barriers;
        });
        locks = analyzeSource(*src);
        for (const auto &p : locks.pairs)
            total_len += p.releaseIdx - p.acquireIdx;
    }

    OutFormat fmt = outFormat(cli);
    OutputSink sink(cli);
    std::ostream &os = sink.stream();

    if (fmt != OutFormat::Text) {
        StatsMeta meta = {
            {"tool", "storemlp_traceinfo"},
            {"file", path},
            {"fingerprint", info.fingerprint},
        };
        StatsRegistry reg;
        reg.counter("trace.records", info.records);
        reg.counter("trace.fileBytes", info.fileBytes);
        reg.counter("trace.version", info.version);
        reg.counter("trace.bodyFormat", info.bodyFormat);
        if (info.version == 4) {
            reg.counter("trace.chunks", info.chunks);
            reg.counter("trace.chunkInsts", info.chunkInsts);
        }
        if (info.records) {
            reg.scalar("trace.compressionRatio",
                       static_cast<double>(info.fileBytes) /
                           static_cast<double>(
                               v1EquivalentBytes(info.records)));
        }
        if (full) {
            reg.counter("trace.loads", mix.loads);
            reg.counter("trace.stores", mix.stores);
            reg.counter("trace.branches", mix.branches);
            reg.counter("trace.atomics", mix.atomics);
            reg.counter("trace.barriers", mix.barriers);
            reg.counter("trace.criticalSections", locks.pairs.size());
            reg.scalar("trace.meanCriticalSectionLen",
                       locks.pairs.empty()
                           ? 0.0
                           : static_cast<double>(total_len) /
                                 static_cast<double>(
                                     locks.pairs.size()));
        }
        if (fmt == OutFormat::Json)
            writeStatsJson(os, reg, meta, /*pretty=*/true);
        else
            writeStatsCsv(os, reg, meta);
        return 0;
    }

    os << "records:  " << info.records << "\n"
       << "bytes:    " << info.fileBytes << "\n"
       << "format:   v" << info.version << " ("
       << bodyFormatName(info.bodyFormat) << " body)\n";
    if (info.version == 4) {
        os << "chunks:   " << info.chunks << " x " << info.chunkInsts
           << " records\n";
    }
    if (info.records) {
        // From the header alone: how this container compares to the
        // same records in fixed-width v1.
        os << "compression: " << std::fixed << std::setprecision(3)
           << static_cast<double>(info.fileBytes) /
                static_cast<double>(v1EquivalentBytes(info.records))
           << "x of v1 equivalent ("
           << v1EquivalentBytes(info.records) << " bytes)\n"
           << std::defaultfloat << std::setprecision(6);
    }
    if (!info.fingerprint.empty())
        os << "fingerprint: " << info.fingerprint << "\n";

    if (full) {
        double n =
            std::max<double>(1.0, static_cast<double>(mix.total));
        os << std::fixed << std::setprecision(2)
           << "loads:    " << mix.loads << " ("
           << 100.0 * mix.loads / n << "%)\n"
           << "stores:   " << mix.stores << " ("
           << 100.0 * mix.stores / n << "%)\n"
           << "branches: " << mix.branches << " ("
           << 100.0 * mix.branches / n << "%)\n"
           << "atomics:  " << mix.atomics << "\n"
           << "barriers: " << mix.barriers << "\n";

        os << "critical sections: " << locks.pairs.size() << "\n";
        if (!locks.pairs.empty()) {
            os << "mean critical-section length: "
               << static_cast<double>(total_len) /
                      static_cast<double>(locks.pairs.size())
               << " instructions\n";
        }
    }

    if (dump) {
        TraceCursor cur(*src);
        for (uint64_t i = 0; i < dump; ++i) {
            const TraceRecord *rp = cur.tryAt(i);
            if (!rp)
                break;
            const TraceRecord &r = *rp;
            os << std::setw(6) << i << "  0x" << std::hex << r.pc
               << std::dec << "  " << std::setw(6)
               << instClassName(r.cls);
            if (isMemClass(r.cls))
                os << "  addr=0x" << std::hex << r.addr << std::dec;
            if (r.cls == InstClass::Branch)
                os << (r.taken() ? "  taken" : "  not-taken");
            if (r.lockAcquire())
                os << "  [acquire]";
            if (r.lockRelease())
                os << "  [release]";
            os << "\n";
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
