/**
 * @file
 * storemlp_calibrate: fit one workload-profile knob so a Table-1
 * metric hits a target, via the secant method on the cache-only
 * measurement. The tool that produced the shipped profiles' final
 * trims, packaged for users adding their own workloads.
 *
 *   storemlp_calibrate --workload database --knob storeColdProb \
 *                      --metric storeMiss --target 0.36
 */

#include <cmath>
#include <iostream>
#include <sstream>

#include "cli_util.hh"
#include "core/config_io.hh"
#include "core/runner.hh"
#include "stats/stats_json.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

double *
knobPtr(WorkloadProfile &p, const std::string &name, const Cli &cli)
{
    if (name == "storeColdProb")
        return &p.storeColdProb;
    if (name == "loadColdProb")
        return &p.loadColdProb;
    if (name == "instColdProb")
        return &p.instColdProb;
    if (name == "lockProb")
        return &p.lockProb;
    if (name == "flushPhaseProb")
        return &p.flushPhaseProb;
    cli.fail("unknown --knob '" + name + "'");
}

double
metricOf(const Runner::MissRates &r, const std::string &name,
         const Cli &cli)
{
    if (name == "storeMiss")
        return r.storeMissPer100;
    if (name == "loadMiss")
        return r.loadMissPer100;
    if (name == "instMiss")
        return r.instMissPer100;
    if (name == "storeFreq")
        return r.storesPer100;
    cli.fail("unknown --metric '" + name + "'");
}

int
toolMain(int argc, char **argv)
{
    Cli cli(argc, argv, {
        {"workload", "database|tpcw|specjbb|specweb",
         "workload profile (default database)"},
        {"profile", "PATH", "start from a custom profile file"},
        {"knob", "NAME",
         "storeColdProb|loadColdProb|instColdProb|lockProb|"
         "flushPhaseProb"},
        {"metric", "NAME", "storeMiss|loadMiss|instMiss|storeFreq"},
        {"target", "X", "desired per-100-instruction value"},
        kWarmupFlag, kMeasureFlag, kSeedFlag,
        {"iters", "N", "secant iterations (default 6)"},
        {"emit", "", "print the fitted profile as key=value"},
        kFormatFlag, kOutFlag,
    });
    if (!cli.has("knob") || !cli.has("metric") || !cli.has("target"))
        cli.fail("--knob, --metric and --target are required");

    WorkloadProfile profile;
    if (cli.has("profile")) {
        try {
            profile = loadWorkloadProfileFile(cli.str("profile", ""));
        } catch (const ConfigParseError &e) {
            cli.fail(e.what());
        }
    } else {
        profile = workloadByName(cli, cli.str("workload", "database"));
    }

    std::string knob = cli.str("knob", "");
    std::string metric = cli.str("metric", "");
    double target = std::strtod(cli.str("target", "0").c_str(),
                                nullptr);
    uint64_t warmup, measure, seed;
    applyRunLengths(cli, warmup, measure, seed);
    uint64_t iters = cli.num("iters", 6);

    OutFormat fmt = outFormat(cli);
    OutputSink sink(cli);
    std::ostream &os = sink.stream();
    // Iteration prose belongs to the text report only; structured
    // formats emit one fitted-result document at the end.
    std::ostringstream discard;
    std::ostream &prose = fmt == OutFormat::Text ? os : discard;
    uint64_t evals = 0;

    auto evaluate = [&](double value) {
        WorkloadProfile p = profile;
        *knobPtr(p, knob, cli) = value;
        Runner::MissRates r =
            Runner::measureMissRates(p, seed, warmup, measure);
        ++evals;
        return metricOf(r, metric, cli);
    };

    // Secant method with two seed points around the current value.
    double x0 = *knobPtr(profile, knob, cli);
    if (x0 <= 0.0)
        x0 = 1e-4;
    double x1 = x0 * 1.5;
    double f0 = evaluate(x0) - target;
    double f1 = evaluate(x1) - target;
    prose << "iter 0: " << knob << "=" << x0 << " -> "
          << f0 + target << "\n";
    prose << "iter 1: " << knob << "=" << x1 << " -> "
          << f1 + target << "\n";

    for (uint64_t i = 2; i < 2 + iters; ++i) {
        if (std::fabs(f1 - f0) < 1e-12)
            break;
        double x2 = x1 - f1 * (x1 - x0) / (f1 - f0);
        if (x2 < 0.0)
            x2 = x1 / 2.0;
        double f2 = evaluate(x2) - target;
        prose << "iter " << i << ": " << knob << "=" << x2
              << " -> " << f2 + target << "\n";
        x0 = x1;
        f0 = f1;
        x1 = x2;
        f1 = f2;
        if (std::fabs(f1) < 0.02 * std::fabs(target) + 1e-4)
            break;
    }

    if (fmt != OutFormat::Text) {
        StatsMeta meta = {
            {"tool", "storemlp_calibrate"},
            {"workload", profile.name},
            {"knob", knob},
            {"metric", metric},
        };
        StatsRegistry reg;
        reg.scalar("calibrate.fitted", x1);
        reg.scalar("calibrate.achieved", f1 + target);
        reg.scalar("calibrate.target", target);
        reg.counter("calibrate.evaluations", evals);
        if (fmt == OutFormat::Json)
            writeStatsJson(os, reg, meta, /*pretty=*/true);
        else
            writeStatsCsv(os, reg, meta);
        return 0;
    }

    os << "\nfitted: " << knob << " = " << x1 << "  ("
       << metric << " = " << f1 + target << ", target "
       << target << ")\n";

    if (cli.flag("emit")) {
        WorkloadProfile fitted = profile;
        *knobPtr(fitted, knob, cli) = x1;
        os << "\n";
        saveWorkloadProfile(os, fitted);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
