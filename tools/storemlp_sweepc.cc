/**
 * @file
 * storemlp_sweepc: sweep service client. Builds the same
 * `SweepRequest` the local storemlp_sweep tool would run (same flag
 * table, same expansion), submits it to a storemlp_sweepd daemon, and
 * prints the streamed per-run schemaVersion-2 JSON documents as JSON
 * lines, followed by the daemon's summary document. If the connection
 * dies mid-stream the client reconnects and resubmits the missing
 * shards (at-least-once delivery; see docs/SWEEP_PROTOCOL.md).
 *
 *   storemlp_sweepc --host 127.0.0.1 --port 7777 --dir configs \
 *       --workload tpcw --models "pc;wc" > results.jsonl
 *
 * Exit codes: 0 all runs completed, 1 on per-run failures or a
 * network/protocol error (SimError contract), 2 usage.
 */

#include <iostream>

#include "cli_util.hh"
#include "net/sweep_client.hh"
#include "sweep_cli.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

int
toolMain(int argc, char **argv)
{
    std::vector<FlagSpec> flags = {
        {"host", "ADDR", "daemon address (default 127.0.0.1)"},
        {"port", "N", "daemon TCP port (required)"},
        {"reconnects", "N",
         "reconnect+resubmit budget after a mid-stream disconnect\n"
         "(default 3)"},
    };
    std::vector<FlagSpec> req_flags = sweepRequestFlags();
    flags.insert(flags.end(), req_flags.begin(), req_flags.end());
    flags.push_back(kOutFlag);
    Cli cli(argc, argv, std::move(flags));

    if (!cli.has("port"))
        cli.fail("--port is required");
    uint64_t port = cli.num("port", 0);
    if (!port || port > 65535)
        cli.fail("--port out of range");

    SweepRequest req = sweepRequestFromFlags(cli);

    net::SweepClientOptions opts;
    opts.host = cli.str("host", "127.0.0.1");
    opts.port = static_cast<uint16_t>(port);
    opts.maxReconnects =
        static_cast<unsigned>(cli.num("reconnects", 3));

    OutputSink sink(cli);
    std::ostream &os = sink.stream();

    // Stream results as they arrive — JSON lines, like the local
    // tool's --format=json output.
    net::RemoteSweepReport report = net::runSweepRemote(
        req, opts,
        [&os](const net::RemoteRunResult &r, size_t, size_t) {
            os << r.json;
            if (r.json.empty() || r.json.back() != '\n')
                os << "\n";
        });

    if (!report.summaryJson.empty()) {
        os << report.summaryJson;
        if (report.summaryJson.back() != '\n')
            os << "\n";
    }
    if (report.reconnects) {
        std::cerr << "storemlp_sweepc: recovered batch after "
                  << report.reconnects << " reconnect(s)\n";
    }

    size_t failed = report.failedRuns();
    for (const net::RemoteRunResult &r : report.results) {
        if (!r.ok)
            std::cerr << "error: " << r.name << ": " << r.errorMessage
                      << "\n";
    }
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
