/**
 * @file
 * storemlp_sim: command-line front end for the epoch-MLP simulator.
 * Runs one (workload, configuration) point and prints a full report,
 * a versioned JSON run artifact, or CSV.
 *
 *   storemlp_sim --workload database --prefetch sp2 --model wc \
 *                --sle --scout hws2 --sq 64 --measure 2000000 \
 *                --format=json --out run.json --epoch-log run.jsonl
 */

#include <fstream>
#include <iostream>

#include "cli_util.hh"
#include "core/config_io.hh"
#include "core/multi_core.hh"
#include "core/runner.hh"
#include "stats/stats_json.hh"
#include "trace/trace_file_source.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

int
toolMain(int argc, char **argv)
{
    Cli cli(argc, argv, {
        {"workload", "database|tpcw|specjbb|specweb",
         "workload profile (default database)"},
        {"prefetch", "sp0|sp1|sp2",
         "store prefetch policy (default sp1)"},
        kModelFlag,
        {"sle", "", "enable speculative lock elision"},
        {"pps", "", "prefetch past serializing instructions"},
        {"scout", "off|hws0|hws1|hws2",
         "hardware scout mode (default off)"},
        {"sq", "N", "store queue entries"},
        {"sb", "N", "store buffer entries"},
        {"rob", "N", "reorder buffer entries"},
        {"iw", "N", "issue window entries"},
        {"coalesce", "N", "coalescing granularity bytes (0 = off)"},
        {"perfect-stores", "", "stores never stall (bound)"},
        {"smac-entries", "N", "enable a SMAC with N entries"},
        {"l1-kb", "N", "L1 size override (KB)"},
        {"l2-kb", "N", "L2 size override (KB)"},
        {"l2-assoc", "N", "L2 associativity override"},
        {"chips", "N", "chips in the multiprocessor (default 1)"},
        {"peers", "", "drive remote chips with peer traffic"},
        {"sibling", "", "second core sharing the measured L2"},
        {"cores", "N",
         "simulate N full cores spread across --chips chips\n"
         "(contention mode: every core is simulated, no peer\n"
         "agents; incompatible with --trace/--peers/--sibling)"},
        {"quantum", "N",
         "instructions per core per interleaving turn in\n"
         "--cores mode (default 256)"},
        {"shared-frac", "F",
         "fraction of cold stores to the globally shared\n"
         "region in --cores mode (default per workload)"},
        {"lock-prob", "F",
         "critical-section probability per slot in --cores\n"
         "mode (default per workload)"},
        {"moesi", "", "MOESI coherence (default MESI)"},
        {"latency", "N", "off-chip miss penalty (default 500)"},
        kWarmupFlag, kMeasureFlag, kSeedFlag,
        {"config", "PATH",
         "load SimConfig from key=value file\n"
         "(flags override file values)"},
        {"profile", "PATH", "load a custom WorkloadProfile file"},
        {"epoch-log", "PATH",
         "write a JSON-lines per-epoch trace to PATH"},
        {"trace", "PATH",
         "simulate an on-disk trace file (streamed in chunks;\n"
         "the file must already reflect --model)"},
        {"stream", "",
         "synthesize the trace chunk-by-chunk instead of\n"
         "materializing it (O(chunk) trace memory)"},
        kChunkInstsFlag,
        kFormatFlag, kOutFlag,
    });

    RunSpec spec;
    if (cli.has("profile")) {
        try {
            spec.profile =
                loadWorkloadProfileFile(cli.str("profile", ""));
        } catch (const ConfigParseError &e) {
            cli.fail(e.what());
        }
    } else {
        spec.profile =
            workloadByName(cli, cli.str("workload", "database"));
    }

    SimConfig &cfg = spec.config;
    if (cli.has("config")) {
        try {
            cfg = loadSimConfigFile(cli.str("config", ""));
        } catch (const ConfigParseError &e) {
            cli.fail(e.what());
        }
    }
    // Flags override the config file only when explicitly given.
    std::string sp = cli.str("prefetch", "");
    if (cli.has("prefetch")) {
        if (sp == "sp0")
            cfg.storePrefetch = StorePrefetch::None;
        else if (sp == "sp1")
            cfg.storePrefetch = StorePrefetch::AtRetire;
        else if (sp == "sp2")
            cfg.storePrefetch = StorePrefetch::AtExecute;
        else
            cli.fail("bad --prefetch");
    } else {
        sp = storePrefetchName(cfg.storePrefetch);
    }

    if (cli.has("model")) {
        // Unknown presets / malformed descriptors are usage errors
        // (exit 2), matching every other flag.
        try {
            cfg.memoryModel =
                ModelDescriptor::parse(cli.str("model", ""));
        } catch (const ConfigError &e) {
            cli.fail(e.what());
        }
    }
    std::string model = cfg.memoryModel.name;

    if (cli.flag("sle"))
        cfg.sle = true;
    if (cli.flag("pps"))
        cfg.prefetchPastSerializing = true;

    std::string scout = cli.str("scout", "");
    if (cli.has("scout")) {
        if (scout == "hws0")
            cfg.scout = ScoutMode::Hws0;
        else if (scout == "hws1")
            cfg.scout = ScoutMode::Hws1;
        else if (scout == "hws2")
            cfg.scout = ScoutMode::Hws2;
        else if (scout == "off")
            cfg.scout = ScoutMode::Off;
        else
            cli.fail("bad --scout");
    } else {
        scout = scoutModeName(cfg.scout);
    }

    if (cli.has("sq"))
        cfg.storeQueueSize = static_cast<uint32_t>(cli.num("sq", 32));
    if (cli.has("sb"))
        cfg.storeBufferSize = static_cast<uint32_t>(cli.num("sb", 16));
    if (cli.has("rob"))
        cfg.robSize = static_cast<uint32_t>(cli.num("rob", 64));
    if (cli.has("iw"))
        cfg.issueWindowSize =
            static_cast<uint32_t>(cli.num("iw", 32));
    if (cli.has("coalesce"))
        cfg.coalesceBytes =
            static_cast<uint32_t>(cli.num("coalesce", 8));
    if (cli.flag("perfect-stores"))
        cfg.perfectStores = true;
    if (cli.has("latency"))
        cfg.missLatency =
            static_cast<uint32_t>(cli.num("latency", 500));

    if (cli.has("l1-kb") || cli.has("l2-kb") || cli.has("l2-assoc")) {
        HierarchyConfig hier;
        if (cli.has("l1-kb")) {
            uint64_t kb = cli.num("l1-kb", 32);
            hier.l1i.sizeBytes = kb * 1024;
            hier.l1d.sizeBytes = kb * 1024;
        }
        if (cli.has("l2-kb"))
            hier.l2.sizeBytes = cli.num("l2-kb", 2048) * 1024;
        if (cli.has("l2-assoc"))
            hier.l2.assoc =
                static_cast<uint32_t>(cli.num("l2-assoc", 4));
        spec.hierarchy = hier;
    }

    if (cli.has("smac-entries")) {
        SmacConfig smac;
        smac.entries =
            static_cast<uint32_t>(cli.num("smac-entries", 8192));
        spec.smac = smac;
    }
    spec.numChips = static_cast<uint32_t>(cli.num("chips", 1));
    if (cli.flag("moesi"))
        spec.protocol = CoherenceProtocol::Moesi;
    spec.peerTraffic = cli.flag("peers");
    spec.siblingCore = cli.flag("sibling");
    applyRunLengths(cli, spec.warmupInsts, spec.measureInsts,
                    spec.seed);

    if (cli.has("cores")) {
        // Contention mode: N full epoch engines on the real snoop
        // bus. The statistical remote-traffic machinery (--peers,
        // --sibling) and on-disk traces don't apply here.
        for (const char *bad : {"peers", "sibling", "trace",
                                "epoch-log", "stream"}) {
            if (cli.has(bad)) {
                cli.fail(std::string("--") + bad +
                         " cannot be combined with --cores");
            }
        }
        MultiRunSpec mspec;
        mspec.profile = spec.profile;
        mspec.config = spec.config;
        mspec.seed = spec.seed;
        mspec.warmupInsts = spec.warmupInsts;
        mspec.measureInsts = spec.measureInsts;
        mspec.cores = static_cast<uint32_t>(cli.num("cores", 2));
        if (mspec.cores == 0) cli.fail("--cores must be >= 1");
        mspec.chips = spec.numChips;
        mspec.quantum = cli.num("quantum", 256);
        if (mspec.quantum == 0) cli.fail("--quantum must be >= 1");
        mspec.smac = spec.smac;
        mspec.protocol = spec.protocol;
        mspec.hierarchy = spec.hierarchy;
        mspec.chunkInsts = cli.num("chunk-insts", 0);
        if (cli.has("shared-frac"))
            mspec.sharedStoreFrac = cli.fnum("shared-frac", 0.0);
        if (cli.has("lock-prob"))
            mspec.lockProb = cli.fnum("lock-prob", 0.0);

        MultiRunOutput mout = MultiCoreRunner::run(mspec);

        OutFormat fmt = outFormat(cli);
        OutputSink sink(cli);
        std::ostream &os = sink.stream();
        if (fmt != OutFormat::Text) {
            StatsMeta meta = {
                {"tool", "storemlp_sim"},
                {"mode", "multicore"},
                {"workload", spec.profile.name},
                {"model", model},
                {"cores", std::to_string(mspec.cores)},
                {"chips", std::to_string(mspec.chips)},
                {"seed", std::to_string(spec.seed)},
                {"warmup", std::to_string(spec.warmupInsts)},
                {"measure", std::to_string(spec.measureInsts)},
            };
            StatsRegistry reg;
            mout.exportStats(reg);
            if (fmt == OutFormat::Json)
                writeStatsJson(os, reg, meta, /*pretty=*/true);
            else
                writeStatsCsv(os, reg, meta);
            return 0;
        }
        os << "workload " << spec.profile.name << ", model "
           << cfg.memoryModel.name << ", " << mspec.cores
           << " cores on " << mspec.chips << " chip"
           << (mspec.chips > 1 ? "s" : "") << "\n\n";
        for (size_t i = 0; i < mout.cores.size(); ++i) {
            const SimResult &r = mout.cores[i];
            os << "cpu" << i << ": " << r.instructions
               << " insts, epochs/1000 " << r.epochsPer1000()
               << ", off-chip CPI ("
               << cfg.missLatency
               << "cy) " << r.offChipCpi(cfg.missLatency) << "\n";
        }
        os << "\ncombined epochs/1000: "
           << mout.combinedEpochsPer1000()
           << "\nmean off-chip CPI: "
           << mout.meanOffChipCpi(cfg.missLatency) << "\n";
        if (mspec.chips > 1) {
            os << "bus invalidations: " << mout.busInvalidations
               << " (" << mout.busInvalidationsPer1000()
               << "/1000 insts), dirty transfers: "
               << mout.busDirtyTransfers << "\n";
        }
        return 0;
    }

    std::ofstream epoch_ofs;
    if (cli.has("epoch-log")) {
        std::string path = cli.str("epoch-log", "");
        epoch_ofs.open(path);
        if (!epoch_ofs)
            cli.fail("cannot open --epoch-log file '" + path + "'");
        spec.epochLog = &epoch_ofs;
    }

    uint64_t chunk = cli.num("chunk-insts", 0);
    RunOutput out;
    if (cli.has("trace")) {
        // On-disk input: mmap-backed, decoded chunk by chunk — a
        // 50M-instruction trace runs in O(chunk) resident memory.
        StreamingFileSource src(cli.str("trace", ""), chunk);
        out = Runner::run(spec, src);
    } else if (cli.flag("stream") || chunk) {
        std::unique_ptr<TraceSource> src =
            Runner::makeSource(spec, chunk);
        out = Runner::run(spec, *src);
    } else {
        Trace trace = Runner::buildTrace(spec);
        MaterializedSource src(trace);
        out = Runner::run(spec, src);
    }

    OutFormat fmt = outFormat(cli);
    OutputSink sink(cli);
    std::ostream &os = sink.stream();

    if (fmt != OutFormat::Text) {
        StatsMeta meta = {
            {"tool", "storemlp_sim"},
            {"workload", spec.profile.name},
            {"model", model},
            {"prefetch", sp},
            {"scout", scout},
            {"seed", std::to_string(spec.seed)},
            {"warmup", std::to_string(spec.warmupInsts)},
            {"measure", std::to_string(spec.measureInsts)},
        };
        StatsRegistry reg;
        out.exportStats(reg);
        if (fmt == OutFormat::Json)
            writeStatsJson(os, reg, meta, /*pretty=*/true);
        else
            writeStatsCsv(os, reg, meta);
        return 0;
    }

    os << "workload " << spec.profile.name << ", model "
       << cfg.memoryModel.name << ", "
       << storePrefetchName(cfg.storePrefetch) << ", scout "
       << scoutModeName(cfg.scout) << (cfg.sle ? ", SLE" : "")
       << "\n\n";
    out.sim.print(os);
    os << "off-chip CPI (" << cfg.missLatency
       << "cy): " << out.sim.offChipCpi(cfg.missLatency) << "\n";
    if (spec.smac) {
        os << "SMAC accelerated stores: "
           << out.sim.smacAcceleratedStores
           << ", coherence invalidates/1000: "
           << out.smacInvalidatesPer1000() << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
