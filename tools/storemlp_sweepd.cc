/**
 * @file
 * storemlp_sweepd: the sweep daemon. Listens on loopback (or a given
 * address), accepts framed-protocol connections from storemlp_sweepc,
 * and executes submitted sweep requests on a shared worker pool +
 * trace cache, streaming per-run schemaVersion-2 JSON documents back
 * as each run completes.
 *
 *   storemlp_sweepd --port 0 --port-file sweepd.port   # ephemeral
 *   storemlp_sweepd --port 7777 --jobs 8
 *
 * `--port 0` binds an ephemeral port and prints "listening on
 * HOST:PORT" (flushed) so a harness can scrape it; --port-file also
 * writes the bare port number to a file for the same purpose.
 * SIGINT/SIGTERM shut the daemon down cleanly.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <thread>

#include "cli_util.hh"
#include "net/sweep_server.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

int
toolMain(int argc, char **argv)
{
    Cli cli(argc, argv, {
        {"host", "ADDR",
         "IPv4 address to bind (default 127.0.0.1)"},
        {"port", "N",
         "TCP port to listen on; 0 picks an ephemeral port\n"
         "(default 0)"},
        {"port-file", "PATH",
         "write the bound port number to PATH once listening"},
        kJobsFlag,
        {"once", "",
         "serve exactly one connection to completion, then exit\n"
         "(for tests and one-shot harnesses)"},
        {"max-conns", "N",
         "exit after serving N connections (0 = serve forever)"},
        {"fault-drop-after", "N",
         "fault-injection test hook: tear down the first submitting\n"
         "connection after N streamed results, as if the server\n"
         "crashed mid-batch"},
    });

    net::SweepServerOptions opts;
    opts.host = cli.str("host", "127.0.0.1");
    uint64_t port = cli.num("port", 0);
    if (port > 65535)
        cli.fail("--port out of range");
    opts.port = static_cast<uint16_t>(port);
    opts.jobs = static_cast<unsigned>(cli.num("jobs", 0));
    opts.maxConnections =
        cli.flag("once") ? 1
                         : static_cast<unsigned>(cli.num("max-conns", 0));
    opts.dropAfterResults =
        static_cast<unsigned>(cli.num("fault-drop-after", 0));

    net::SweepServer server(opts);
    server.start();

    std::cout << "listening on " << opts.host << ":" << server.port()
              << std::endl; // flushed: harnesses scrape this line

    if (cli.has("port-file")) {
        std::string path = cli.str("port-file", "");
        std::ofstream pf(path);
        if (!pf)
            cli.fail("cannot write --port-file '" + path + "'");
        pf << server.port() << "\n";
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    while (!g_stop.load() && !server.finished())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server.stop();
    std::cout << "served " << server.connectionsServed()
              << " connection(s)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
