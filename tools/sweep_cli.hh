/**
 * @file
 * Shared sweep-request construction for the sweep tools. The local
 * `storemlp_sweep` and the networked `storemlp_sweepc` both build
 * their `SweepRequest` through `sweepRequestFromFlags`, from the same
 * flag table — so a batch submitted over the wire is, provably, the
 * batch the local tool would have run.
 */

#ifndef STOREMLP_TOOLS_SWEEP_CLI_HH
#define STOREMLP_TOOLS_SWEEP_CLI_HH

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "cli_util.hh"
#include "core/config_io.hh"
#include "core/sweep_request.hh"

namespace storemlp::tools
{

/** Flags consumed by sweepRequestFromFlags, for a tool's Cli table. */
inline std::vector<FlagSpec>
sweepRequestFlags()
{
    return {
        {"dir", "PATH",
         "directory of *.cfg SimConfig files (default: configs)"},
        {"workload", "all|database|tpcw|specjbb|specweb",
         "workload(s) to sweep (default all)"},
        {"models", "LIST",
         "also sweep the memory-model axis: run every config under\n"
         "each model in LIST (';'-separated presets or key=val\n"
         "descriptors; ',' also splits when no ';' is present)"},
        kWarmupFlag, kMeasureFlag, kSeedFlag,
        {"retries", "N",
         "retry a failing run up to N extra times (default 0)"},
        {"stream", "",
         "synthesize traces chunk-by-chunk per worker instead of\n"
         "materializing them (O(chunk) trace memory per run;\n"
         "workers share decoded chunks via the trace cache)"},
        kChunkInstsFlag,
    };
}

/**
 * Build a SweepRequest from the shared flags: configs from --dir
 * (sorted by file name, named by stem), workloads from --workload,
 * optional --models axis, run lengths and execution options. Exits 2
 * via cli.fail on unreadable directories or unparsable configs.
 */
inline SweepRequest
sweepRequestFromFlags(const Cli &cli)
{
    SweepRequest req;

    std::string dir = cli.str("dir", "configs");
    std::vector<std::filesystem::path> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".cfg")
            files.push_back(entry.path());
    }
    if (ec)
        cli.fail("cannot read directory '" + dir + "': " + ec.message());
    if (files.empty())
        cli.fail("no .cfg files in '" + dir + "'");
    std::sort(files.begin(), files.end());

    for (const auto &f : files) {
        SweepConfigEntry entry;
        entry.name = f.stem().string();
        try {
            entry.config = loadSimConfigFile(f.string());
        } catch (const ConfigParseError &e) {
            cli.fail(e.what());
        }
        req.configs.push_back(std::move(entry));
    }

    std::string wl = cli.str("workload", "all");
    if (wl == "all") {
        req.workloads = {"database", "tpcw", "specjbb", "specweb"};
    } else {
        (void)workloadByName(cli, wl); // validate (exit 2 on typo)
        req.workloads = {wl};
    }

    if (cli.has("models")) {
        std::string list = cli.str("models", "");
        char sep = list.find(';') != std::string::npos ? ';' : ',';
        size_t pos = 0;
        while (pos <= list.size()) {
            size_t end = list.find(sep, pos);
            std::string tok = list.substr(
                pos, end == std::string::npos ? std::string::npos
                                              : end - pos);
            if (!tok.empty())
                req.models.push_back(tok);
            if (end == std::string::npos)
                break;
            pos = end + 1;
        }
        if (req.models.empty())
            cli.fail("--models requires at least one model");
        for (const std::string &m : req.models) {
            try {
                (void)ModelDescriptor::parse(m);
            } catch (const ConfigError &e) {
                cli.fail(e.what());
            }
        }
    }

    applyRunLengths(cli, req.warmupInsts, req.measureInsts, req.seed);
    if (cli.has("retries"))
        req.retries = static_cast<unsigned>(cli.num("retries", 0));
    req.streaming = cli.flag("stream") || cli.has("chunk-insts");
    req.chunkInsts = cli.num("chunk-insts", 0);
    return req;
}

/** Axis label used in tables/CSV: config plus any model suffix. */
inline std::string
runConfigLabel(const std::string &config_name, const std::string &model)
{
    return model.empty() ? config_name : config_name + "@" + model;
}

} // namespace storemlp::tools

#endif // STOREMLP_TOOLS_SWEEP_CLI_HH
