/**
 * @file
 * storemlp_tracegen: generate a synthetic workload trace and write it
 * in the storemlp binary trace format. The generation report goes to
 * stdout (text, JSON document, or CSV).
 *
 *   storemlp_tracegen --workload tpcw --count 5000000 \
 *                     --seed 7 --out tpcw.trc [--wc]
 */

#include <iostream>

#include "cli_util.hh"
#include "stats/stats_json.hh"
#include "trace/generator.hh"
#include "trace/rewriter.hh"
#include "trace/trace_io.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

int
toolMain(int argc, char **argv)
{
    Cli cli(argc, argv, {
        {"workload", "database|tpcw|specjbb|specweb",
         "workload profile (default database)"},
        {"count", "N", "instructions to generate (default 1M)"},
        kSeedFlag,
        {"chip", "N", "chip id for region placement (default 0)"},
        {"wc", "", "emit the weak-consistency rendition"},
        {"v2", "", "delta-compressed output format"},
        {"out", "PATH", "output trace file (required)"},
        kFormatFlag,
    });
    if (!cli.has("out"))
        cli.fail("--out is required");

    WorkloadProfile profile =
        workloadByName(cli, cli.str("workload", "database"));
    SyntheticTraceGenerator gen(profile, cli.num("seed", 42),
                                static_cast<uint32_t>(
                                    cli.num("chip", 0)));
    Trace trace = gen.generate(cli.num("count", 1000 * 1000));

    if (cli.flag("wc"))
        trace = TraceRewriter().toWeakConsistency(trace);

    try {
        if (cli.flag("v2"))
            writeTraceCompressedFile(cli.str("out", ""), trace);
        else
            writeTraceFile(cli.str("out", ""), trace);
    } catch (const TraceFormatError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    Trace::Mix mix = trace.mix();
    OutFormat fmt = outFormat(cli);
    if (fmt != OutFormat::Text) {
        StatsMeta meta = {
            {"tool", "storemlp_tracegen"},
            {"workload", profile.name},
            {"model", cli.flag("wc") ? "wc" : "pc"},
            {"file", cli.str("out", "")},
        };
        StatsRegistry reg;
        reg.counter("trace.records", trace.size());
        reg.counter("trace.loads", mix.loads);
        reg.counter("trace.stores", mix.stores);
        reg.counter("trace.branches", mix.branches);
        reg.counter("trace.atomics", mix.atomics);
        reg.counter("trace.barriers", mix.barriers);
        if (fmt == OutFormat::Json)
            writeStatsJson(std::cout, reg, meta, /*pretty=*/true);
        else
            writeStatsCsv(std::cout, reg, meta);
        return 0;
    }

    std::cout << "wrote " << trace.size() << " records ("
              << profile.name << (cli.flag("wc") ? ", WC" : ", PC/TSO")
              << ")\n"
              << "  loads " << mix.loads << ", stores " << mix.stores
              << ", branches " << mix.branches << ", atomics "
              << mix.atomics << ", barriers " << mix.barriers << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
