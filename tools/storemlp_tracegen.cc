/**
 * @file
 * storemlp_tracegen: generate a synthetic workload trace and write it
 * in the storemlp binary trace format.
 *
 *   storemlp_tracegen --workload tpcw --count 5000000 \
 *                     --seed 7 --out tpcw.trc [--wc]
 */

#include <iostream>

#include "cli_util.hh"
#include "trace/generator.hh"
#include "trace/rewriter.hh"
#include "trace/trace_io.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

const char *kUsage =
    "  --workload database|tpcw|specjbb|specweb   (default database)\n"
    "  --count N             instructions to generate (default 1M)\n"
    "  --seed N              generator seed (default 42)\n"
    "  --chip N              chip id for region placement (default 0)\n"
    "  --wc                  emit the weak-consistency rendition\n"
    "  --v2                  delta-compressed output format\n"
    "  --out PATH            output file (required)\n";

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, kUsage);
    if (!cli.has("out"))
        cli.fail("--out is required");

    WorkloadProfile profile =
        workloadByName(cli, cli.str("workload", "database"));
    SyntheticTraceGenerator gen(profile, cli.num("seed", 42),
                                static_cast<uint32_t>(
                                    cli.num("chip", 0)));
    Trace trace = gen.generate(cli.num("count", 1000 * 1000));

    if (cli.flag("wc"))
        trace = TraceRewriter().toWeakConsistency(trace);

    try {
        if (cli.flag("v2"))
            writeTraceCompressedFile(cli.str("out", ""), trace);
        else
            writeTraceFile(cli.str("out", ""), trace);
    } catch (const TraceFormatError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    Trace::Mix mix = trace.mix();
    std::cout << "wrote " << trace.size() << " records ("
              << profile.name << (cli.flag("wc") ? ", WC" : ", PC/TSO")
              << ")\n"
              << "  loads " << mix.loads << ", stores " << mix.stores
              << ", branches " << mix.branches << ", atomics "
              << mix.atomics << ", barriers " << mix.barriers << "\n";
    return 0;
}
