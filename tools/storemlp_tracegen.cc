/**
 * @file
 * storemlp_tracegen: generate a synthetic workload trace and write it
 * in the storemlp binary trace format. The generation report goes to
 * stdout (text, JSON document, or CSV).
 *
 *   storemlp_tracegen --workload tpcw --count 5000000 \
 *                     --seed 7 --out tpcw.trc [--wc]
 */

#include <iostream>

#include "cli_util.hh"
#include "stats/stats_json.hh"
#include "trace/generator.hh"
#include "trace/rewriter.hh"
#include "trace/trace_io.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

int
toolMain(int argc, char **argv)
{
    Cli cli(argc, argv, {
        {"workload", "database|tpcw|specjbb|specweb",
         "workload profile (default database)"},
        {"count", "N", "instructions to generate (default 1M)"},
        kSeedFlag,
        {"chip", "N", "chip id for region placement (default 0)"},
        {"wc", "", "emit the weak-consistency rendition"},
        {"v2", "", "delta-compressed record encoding"},
        {"compress", "[=v4]",
         "chunk-indexed compressed v4 container (smallest,\n"
         "random access); --chunk-insts sets its chunk size"},
        kChunkInstsFlag,
        {"legacy", "",
         "bare v1/v2 container (no fingerprint header);\n"
         "default is the self-describing v3 container"},
        {"out", "PATH", "output trace file (required)"},
        kFormatFlag,
    });
    if (!cli.has("out"))
        cli.fail("--out is required");
    if (cli.has("compress")) {
        std::string v = cli.str("compress", "");
        if (!v.empty() && v != "v4")
            cli.fail("bad --compress value '" + v + "' (only v4)");
        if (cli.flag("legacy"))
            cli.fail("--compress requires the self-describing "
                     "container (drop --legacy)");
        if (cli.flag("v2"))
            cli.fail("--compress and --v2 are mutually exclusive");
    }

    WorkloadProfile profile =
        workloadByName(cli, cli.str("workload", "database"));
    uint64_t seed = cli.num("seed", 42);
    uint64_t count = cli.num("count", 1000 * 1000);
    uint64_t chip = cli.num("chip", 0);
    SyntheticTraceGenerator gen(profile, seed,
                                static_cast<uint32_t>(chip));
    Trace trace = gen.generate(count);

    if (cli.flag("wc"))
        trace = TraceRewriter().toWeakConsistency(trace);

    try {
        if (cli.flag("legacy")) {
            // Bare v1/v2 stream, for consumers predating the v3
            // container.
            if (cli.flag("v2"))
                writeTraceCompressedFile(cli.str("out", ""), trace);
            else
                writeTraceFile(cli.str("out", ""), trace);
        } else {
            // Same provenance string GeneratorSource streams under,
            // so a file round-trip is cache-compatible with the
            // equivalent synthesized source.
            std::string fp = profile.cacheKey() +
                "|seed=" + std::to_string(seed) +
                "|n=" + std::to_string(count) +
                "|wc=" + (cli.flag("wc") ? "1" : "0") +
                "|chip=" + std::to_string(chip);
            if (cli.has("compress")) {
                writeTraceFileV4(cli.str("out", ""), trace, fp,
                                 cli.num("chunk-insts", 65536));
            } else {
                writeTraceFileV3(cli.str("out", ""), trace, fp,
                                 cli.flag("v2"));
            }
        }
    } catch (const TraceFormatError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    Trace::Mix mix = trace.mix();
    OutFormat fmt = outFormat(cli);
    if (fmt != OutFormat::Text) {
        StatsMeta meta = {
            {"tool", "storemlp_tracegen"},
            {"workload", profile.name},
            {"model", cli.flag("wc") ? "wc" : "pc"},
            {"file", cli.str("out", "")},
        };
        StatsRegistry reg;
        reg.counter("trace.records", trace.size());
        reg.counter("trace.loads", mix.loads);
        reg.counter("trace.stores", mix.stores);
        reg.counter("trace.branches", mix.branches);
        reg.counter("trace.atomics", mix.atomics);
        reg.counter("trace.barriers", mix.barriers);
        if (fmt == OutFormat::Json)
            writeStatsJson(std::cout, reg, meta, /*pretty=*/true);
        else
            writeStatsCsv(std::cout, reg, meta);
        return 0;
    }

    std::cout << "wrote " << trace.size() << " records ("
              << profile.name << (cli.flag("wc") ? ", WC" : ", PC/TSO")
              << ")\n"
              << "  loads " << mix.loads << ", stores " << mix.stores
              << ", branches " << mix.branches << ", atomics "
              << mix.atomics << ", barriers " << mix.barriers << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
