/**
 * @file
 * storemlp_sweep: run a whole directory of SimConfig files (e.g.
 * configs/*.cfg) against one or all workloads in a single parallel
 * invocation of the sweep engine. Prints one table per workload
 * (config x headline metrics, with per-run wall-clock) or CSV rows
 * with --csv.
 *
 *   storemlp_sweep --dir configs --workload all --jobs 4
 *   storemlp_sweep --dir configs --workload tpcw --csv
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <vector>

#include "cli_util.hh"
#include "core/config_io.hh"
#include "core/sweep.hh"
#include "stats/table.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

const char *kUsage =
    "  --dir PATH            directory of *.cfg SimConfig files\n"
    "                        (default: configs)\n"
    "  --workload all|database|tpcw|specjbb|specweb (default all)\n"
    "  --jobs N              worker threads (default: STOREMLP_JOBS,\n"
    "                        else hardware concurrency)\n"
    "  --warmup N --measure N --seed N   run lengths (defaults\n"
    "                        600000 / 1000000 / 42)\n"
    "  --no-trace-cache      rebuild the trace for every run\n"
    "  --csv                 CSV rows instead of tables\n";

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, kUsage);

    std::string dir = cli.str("dir", "configs");
    std::vector<std::filesystem::path> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".cfg")
            files.push_back(entry.path());
    }
    if (ec)
        cli.fail("cannot read directory '" + dir + "': " + ec.message());
    if (files.empty())
        cli.fail("no .cfg files in '" + dir + "'");
    std::sort(files.begin(), files.end());

    std::vector<SimConfig> configs;
    std::vector<std::string> config_names;
    for (const auto &f : files) {
        try {
            configs.push_back(loadSimConfigFile(f.string()));
        } catch (const ConfigParseError &e) {
            cli.fail(e.what());
        }
        config_names.push_back(f.stem().string());
    }

    std::vector<WorkloadProfile> profiles;
    std::string wl = cli.str("workload", "all");
    if (wl == "all")
        profiles = WorkloadProfile::allCommercial();
    else
        profiles.push_back(workloadByName(cli, wl));

    uint64_t warmup = cli.num("warmup", 600 * 1000);
    uint64_t measure = cli.num("measure", 1000 * 1000);
    uint64_t seed = cli.num("seed", 42);

    std::vector<RunSpec> specs;
    for (const auto &profile : profiles) {
        for (const SimConfig &cfg : configs) {
            RunSpec spec;
            spec.profile = profile;
            spec.config = cfg;
            spec.warmupInsts = warmup;
            spec.measureInsts = measure;
            spec.seed = seed;
            specs.push_back(spec);
        }
    }

    SweepOptions opts;
    if (cli.has("jobs"))
        opts.jobs = static_cast<unsigned>(cli.num("jobs", 0));
    opts.useTraceCache = !cli.flag("no-trace-cache");
    SweepEngine engine(opts);
    std::vector<SweepResult> results = engine.run(specs);

    if (cli.flag("csv")) {
        std::cout << "workload,config,epochs_per_1000,mlp,store_mlp,"
                     "offchip_cpi,overlapped_frac,wall_ms,"
                     "trace_cache_hit\n";
        size_t idx = 0;
        for (const auto &profile : profiles) {
            for (size_t c = 0; c < configs.size(); ++c) {
                const SweepResult &r = results[idx++];
                std::cout
                    << profile.name << "," << config_names[c] << ","
                    << r.output.sim.epochsPer1000() << ","
                    << r.output.sim.mlp() << ","
                    << r.output.sim.storeMlp() << ","
                    << r.output.sim.offChipCpi(
                           configs[c].missLatency)
                    << "," << r.output.sim.overlappedStoreFraction()
                    << "," << r.wallMs << ","
                    << (r.traceCacheHit ? 1 : 0) << "\n";
            }
        }
        return 0;
    }

    size_t idx = 0;
    for (const auto &profile : profiles) {
        TextTable table("Sweep — " + profile.name + " (" +
                        std::to_string(configs.size()) + " configs)");
        table.header({"config", "epochs/1000", "MLP", "store MLP",
                      "off-chip CPI", "overlapped", "wall ms"});
        for (size_t c = 0; c < configs.size(); ++c) {
            const SweepResult &r = results[idx++];
            table.beginRow();
            table.cell(config_names[c]);
            table.cell(r.output.sim.epochsPer1000(), 3);
            table.cell(r.output.sim.mlp(), 3);
            table.cell(r.output.sim.storeMlp(), 3);
            table.cell(r.output.sim.offChipCpi(configs[c].missLatency),
                       3);
            table.cell(r.output.sim.overlappedStoreFraction(), 3);
            table.cell(r.wallMs, 1);
        }
        table.print(std::cout);
    }

    TraceCacheStats cs = engine.traceCache().stats();
    std::cout << "trace cache: " << cs.hits << " hits, " << cs.misses
              << " misses, " << cs.bytes / (1024 * 1024)
              << " MB resident\n";
    return 0;
}
