/**
 * @file
 * storemlp_sweep: run a whole directory of SimConfig files (e.g.
 * configs/*.cfg) against one or all workloads in a single parallel
 * invocation of the sweep engine. Prints one table per workload
 * (config x headline metrics, with per-run wall-clock), CSV rows, or
 * — with --format=json — one versioned JSON document per run (JSON
 * lines) followed by an engine summary document.
 *
 *   storemlp_sweep --dir configs --workload all --jobs 4
 *   storemlp_sweep --dir configs --workload tpcw --format=json
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "cli_util.hh"
#include "core/config_io.hh"
#include "core/multi_core.hh"
#include "core/sweep.hh"
#include "stats/stats_json.hh"
#include "stats/table.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

int
toolMain(int argc, char **argv)
{
    Cli cli(argc, argv, {
        {"dir", "PATH",
         "directory of *.cfg SimConfig files (default: configs)"},
        {"workload", "all|database|tpcw|specjbb|specweb",
         "workload(s) to sweep (default all)"},
        {"models", "LIST",
         "also sweep the memory-model axis: run every config under\n"
         "each model in LIST (';'-separated presets or key=val\n"
         "descriptors; ',' also splits when no ';' is present)"},
        {"cores", "LIST",
         "sweep the core-count axis: run every (workload, config)\n"
         "point on the N-core contention runner for each core count\n"
         "in LIST (comma-separated, e.g. 1,2,4,8); run names become\n"
         "config@cores=N"},
        {"chips", "N",
         "chips for --cores runs (default: one chip per core);\n"
         "cores are assigned round-robin"},
        {"quantum", "N",
         "interleaving quantum for --cores runs (default 256)"},
        {"shared-frac", "F",
         "shared-store fraction override for --cores runs"},
        {"lock-prob", "F",
         "lock-density override for --cores runs"},
        kJobsFlag,
        kWarmupFlag, kMeasureFlag, kSeedFlag,
        {"no-trace-cache", "", "rebuild the trace for every run"},
        {"stream", "",
         "synthesize traces chunk-by-chunk per worker instead of\n"
         "materializing them (O(chunk) trace memory per run;\n"
         "workers share decoded chunks via the trace cache)"},
        kChunkInstsFlag,
        {"retries", "N",
         "retry a failing run up to N extra times (default 0)"},
        {"epoch-log", "DIR",
         "write one JSON-lines epoch trace per run into DIR"},
        kFormatFlag, kOutFlag,
    });

    std::string dir = cli.str("dir", "configs");
    std::vector<std::filesystem::path> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".cfg")
            files.push_back(entry.path());
    }
    if (ec)
        cli.fail("cannot read directory '" + dir + "': " + ec.message());
    if (files.empty())
        cli.fail("no .cfg files in '" + dir + "'");
    std::sort(files.begin(), files.end());

    std::vector<SimConfig> configs;
    std::vector<std::string> config_names;
    for (const auto &f : files) {
        try {
            configs.push_back(loadSimConfigFile(f.string()));
        } catch (const ConfigParseError &e) {
            cli.fail(e.what());
        }
        config_names.push_back(f.stem().string());
    }

    // --models crosses every config with every requested model
    // descriptor, so one batch covers the whole model axis.
    if (cli.has("models")) {
        std::string list = cli.str("models", "");
        char sep = list.find(';') != std::string::npos ? ';' : ',';
        std::vector<ModelDescriptor> models;
        size_t pos = 0;
        while (pos <= list.size()) {
            size_t end = list.find(sep, pos);
            std::string tok = list.substr(
                pos, end == std::string::npos ? std::string::npos
                                              : end - pos);
            if (!tok.empty()) {
                try {
                    models.push_back(ModelDescriptor::parse(tok));
                } catch (const ConfigError &e) {
                    cli.fail(e.what());
                }
            }
            if (end == std::string::npos)
                break;
            pos = end + 1;
        }
        if (models.empty())
            cli.fail("--models requires at least one model");
        std::vector<SimConfig> crossed;
        std::vector<std::string> crossed_names;
        for (size_t c = 0; c < configs.size(); ++c) {
            for (size_t mi = 0; mi < models.size(); ++mi) {
                SimConfig cc = configs[c];
                cc.memoryModel = models[mi];
                crossed.push_back(cc);
                // Preset name when it has one; positional otherwise
                // (a custom spec() contains commas, which would break
                // the CSV rows).
                std::string mname = models[mi].name == "custom"
                    ? "custom" + std::to_string(mi)
                    : models[mi].name;
                crossed_names.push_back(config_names[c] + "@" + mname);
            }
        }
        configs = std::move(crossed);
        config_names = std::move(crossed_names);
    }

    std::vector<WorkloadProfile> profiles;
    std::string wl = cli.str("workload", "all");
    if (wl == "all")
        profiles = WorkloadProfile::allCommercial();
    else
        profiles.push_back(workloadByName(cli, wl));

    uint64_t warmup, measure, seed;
    applyRunLengths(cli, warmup, measure, seed);

    if (cli.has("cores")) {
        // Core-count axis: every (workload, config) point runs on the
        // N-core contention runner for each requested core count. The
        // runs are not RunSpec-shaped, so they go through the engine's
        // task pool directly; slots are indexed, keeping results in
        // submission order regardless of --jobs.
        for (const char *bad : {"epoch-log", "retries", "stream"}) {
            if (cli.has(bad)) {
                cli.fail(std::string("--") + bad +
                         " cannot be combined with --cores");
            }
        }
        std::vector<uint32_t> core_counts;
        {
            std::string list = cli.str("cores", "");
            size_t pos = 0;
            while (pos <= list.size()) {
                size_t end = list.find(',', pos);
                std::string tok = list.substr(
                    pos, end == std::string::npos ? std::string::npos
                                                  : end - pos);
                if (!tok.empty()) {
                    std::optional<uint64_t> v = parseU64Strict(tok);
                    if (!v || !*v) {
                        cli.fail("bad --cores entry '" + tok +
                                 "': expected a positive integer");
                    }
                    core_counts.push_back(
                        static_cast<uint32_t>(*v));
                }
                if (end == std::string::npos)
                    break;
                pos = end + 1;
            }
            if (core_counts.empty())
                cli.fail("--cores requires at least one core count");
        }
        uint64_t chips_flag = cli.num("chips", 0);

        struct McRun
        {
            const WorkloadProfile *profile;
            size_t config;
            uint32_t cores;
            std::string name;
            MultiRunOutput output;
            double wallMs = 0.0;
            bool ok = false;
            std::string errorMessage;
        };
        std::vector<McRun> runs;
        for (const auto &profile : profiles) {
            for (size_t c = 0; c < configs.size(); ++c) {
                for (uint32_t n : core_counts) {
                    if (chips_flag > n) {
                        cli.fail("--chips " +
                                 std::to_string(chips_flag) +
                                 " exceeds core count " +
                                 std::to_string(n));
                    }
                    McRun r;
                    r.profile = &profile;
                    r.config = c;
                    r.cores = n;
                    r.name = profile.name + "_" + config_names[c] +
                        "@cores=" + std::to_string(n);
                    runs.push_back(std::move(r));
                }
            }
        }

        std::optional<double> shared_frac;
        if (cli.has("shared-frac"))
            shared_frac = cli.fnum("shared-frac", 0.0);
        std::optional<double> lock_prob;
        if (cli.has("lock-prob"))
            lock_prob = cli.fnum("lock-prob", 0.0);
        uint64_t quantum = cli.num("quantum", 256);
        uint64_t chunk = cli.num("chunk-insts", 0);

        std::vector<std::function<void()>> tasks;
        for (McRun &r : runs) {
            tasks.push_back([&r, &configs, chips_flag, quantum, chunk,
                             shared_frac, lock_prob, warmup, measure,
                             seed] {
                MultiRunSpec spec;
                spec.profile = *r.profile;
                spec.config = configs[r.config];
                spec.seed = seed;
                spec.warmupInsts = warmup;
                spec.measureInsts = measure;
                spec.quantum = quantum;
                spec.cores = r.cores;
                spec.chips = chips_flag
                    ? static_cast<uint32_t>(chips_flag)
                    : r.cores;
                spec.sharedStoreFrac = shared_frac;
                spec.lockProb = lock_prob;
                spec.chunkInsts = chunk;
                auto t0 = std::chrono::steady_clock::now();
                r.output = MultiCoreRunner::run(spec);
                r.wallMs = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
                r.ok = true;
            });
        }

        SweepOptions opts;
        if (cli.has("jobs"))
            opts.jobs = static_cast<unsigned>(cli.num("jobs", 0));
        SweepEngine engine(opts);
        std::vector<TaskStatus> statuses = engine.runTasks(tasks);
        size_t failed = 0;
        for (size_t i = 0; i < runs.size(); ++i) {
            if (!statuses[i].ok) {
                runs[i].errorMessage = statuses[i].errorMessage;
                ++failed;
            }
        }

        OutFormat fmt = outFormat(cli);
        OutputSink sink(cli);
        std::ostream &os = sink.stream();

        if (fmt == OutFormat::Csv) {
            os << "workload,config,cores,chips,epochs_per_1000,"
                  "mean_offchip_cpi,bus_invalidations,"
                  "bus_inval_per_1000,bus_dirty_transfers,wall_ms,"
                  "ok\n";
            for (const McRun &r : runs) {
                os << r.profile->name << "," << config_names[r.config]
                   << "@cores=" << r.cores << "," << r.cores << ","
                   << (chips_flag ? chips_flag : r.cores) << ","
                   << r.output.combinedEpochsPer1000() << ","
                   << r.output.meanOffChipCpi(
                          configs[r.config].missLatency)
                   << "," << r.output.busInvalidations << ","
                   << r.output.busInvalidationsPer1000() << ","
                   << r.output.busDirtyTransfers << "," << r.wallMs
                   << "," << (r.ok ? 1 : 0) << "\n";
            }
            for (const McRun &r : runs) {
                if (!r.ok)
                    std::cerr << "error: " << r.errorMessage << "\n";
            }
            return failed ? 1 : 0;
        }

        if (fmt == OutFormat::Json) {
            for (const McRun &r : runs) {
                StatsMeta meta = {
                    {"tool", "storemlp_sweep"},
                    {"kind", "run"},
                    {"mode", "multicore"},
                    {"workload", r.profile->name},
                    {"config", config_names[r.config]},
                    {"run", r.name},
                    {"cores", std::to_string(r.cores)},
                    {"chips", std::to_string(
                                  chips_flag ? chips_flag : r.cores)},
                    {"seed", std::to_string(seed)},
                    {"warmup", std::to_string(warmup)},
                    {"measure", std::to_string(measure)},
                };
                if (!r.ok)
                    meta.push_back({"error", r.errorMessage});
                StatsRegistry reg;
                if (r.ok)
                    r.output.exportStats(reg);
                reg.counter("sweep.run.ok", r.ok ? 1 : 0);
                reg.scalar("sweep.run.wallMs", r.wallMs);
                writeStatsJson(os, reg, meta, /*pretty=*/false);
            }
            StatsMeta meta = {
                {"tool", "storemlp_sweep"},
                {"kind", "sweep-summary"},
                {"mode", "multicore"},
            };
            StatsRegistry reg;
            engine.exportStats(reg);
            writeStatsJson(os, reg, meta, /*pretty=*/false);
            return failed ? 1 : 0;
        }

        size_t idx = 0;
        for (const auto &profile : profiles) {
            TextTable table(
                "Multi-core sweep — " + profile.name + " (" +
                std::to_string(configs.size()) + " configs x " +
                std::to_string(core_counts.size()) + " core counts)");
            table.header({"run", "epochs/1000", "off-chip CPI",
                          "bus inval/1000", "dirty xfers", "wall ms"});
            for (size_t c = 0; c < configs.size(); ++c) {
                for (size_t n = 0; n < core_counts.size(); ++n) {
                    const McRun &r = runs[idx++];
                    table.beginRow();
                    table.cell(config_names[r.config] + "@cores=" +
                               std::to_string(r.cores));
                    if (!r.ok) {
                        table.cell("FAILED");
                        for (int k = 0; k < 3; ++k)
                            table.cell("-");
                        table.cell(r.wallMs, 1);
                        continue;
                    }
                    table.cell(r.output.combinedEpochsPer1000(), 3);
                    table.cell(r.output.meanOffChipCpi(
                                   configs[r.config].missLatency),
                               3);
                    table.cell(r.output.busInvalidationsPer1000(), 3);
                    table.cell(static_cast<double>(
                                   r.output.busDirtyTransfers),
                               0);
                    table.cell(r.wallMs, 1);
                }
            }
            table.print(os);
        }
        if (failed) {
            os << failed << " of " << runs.size() << " runs failed:\n";
            for (const McRun &r : runs) {
                if (!r.ok)
                    os << "  " << r.name << ": " << r.errorMessage
                       << "\n";
            }
        }
        return failed ? 1 : 0;
    }

    std::vector<RunSpec> specs;
    std::vector<std::string> run_names;
    for (const auto &profile : profiles) {
        for (size_t c = 0; c < configs.size(); ++c) {
            RunSpec spec;
            spec.profile = profile;
            spec.config = configs[c];
            spec.warmupInsts = warmup;
            spec.measureInsts = measure;
            spec.seed = seed;
            specs.push_back(spec);
            run_names.push_back(profile.name + "_" + config_names[c]);
        }
    }

    // One epoch-log stream per run: the workers run concurrently, so
    // the runs cannot share a sink.
    std::vector<std::unique_ptr<std::ofstream>> epoch_logs;
    if (cli.has("epoch-log")) {
        std::filesystem::path log_dir = cli.str("epoch-log", "");
        std::filesystem::create_directories(log_dir, ec);
        if (ec)
            cli.fail("cannot create --epoch-log directory '" +
                     log_dir.string() + "': " + ec.message());
        for (size_t i = 0; i < specs.size(); ++i) {
            auto os = std::make_unique<std::ofstream>(
                log_dir / (run_names[i] + ".epochs.jsonl"));
            if (!*os)
                cli.fail("cannot open epoch log for run '" +
                         run_names[i] + "'");
            specs[i].epochLog = os.get();
            epoch_logs.push_back(std::move(os));
        }
    }

    SweepOptions opts;
    if (cli.has("jobs"))
        opts.jobs = static_cast<unsigned>(cli.num("jobs", 0));
    if (cli.has("retries"))
        opts.maxAttempts =
            1 + static_cast<unsigned>(cli.num("retries", 0));
    opts.useTraceCache = !cli.flag("no-trace-cache");
    opts.streaming = cli.flag("stream") || cli.has("chunk-insts");
    opts.chunkInsts = cli.num("chunk-insts", 0);
    SweepEngine engine(opts);
    std::vector<SweepResult> results = engine.run(specs);

    // Fault containment: failed runs are reported (and fail the exit
    // code) but never discard the completed results.
    size_t failed = 0;
    for (const SweepResult &r : results)
        failed += r.ok ? 0 : 1;

    OutFormat fmt = outFormat(cli);
    OutputSink sink(cli);
    std::ostream &os = sink.stream();

    if (fmt == OutFormat::Csv) {
        os << "workload,config,epochs_per_1000,mlp,store_mlp,"
              "offchip_cpi,overlapped_frac,wall_ms,"
              "trace_cache_hit,ok\n";
        size_t idx = 0;
        for (const auto &profile : profiles) {
            for (size_t c = 0; c < configs.size(); ++c) {
                const SweepResult &r = results[idx++];
                os << profile.name << "," << config_names[c] << ","
                   << r.output.sim.epochsPer1000() << ","
                   << r.output.sim.mlp() << ","
                   << r.output.sim.storeMlp() << ","
                   << r.output.sim.offChipCpi(configs[c].missLatency)
                   << "," << r.output.sim.overlappedStoreFraction()
                   << "," << r.wallMs << ","
                   << (r.traceCacheHit ? 1 : 0) << ","
                   << (r.ok ? 1 : 0) << "\n";
            }
        }
        for (const SweepResult &r : results) {
            if (!r.ok)
                std::cerr << "error: " << r.errorMessage << "\n";
        }
        return failed ? 1 : 0;
    }

    if (fmt == OutFormat::Json) {
        // JSON lines: one compact versioned document per run, then an
        // engine summary document (trace-cache sharing, job count).
        size_t idx = 0;
        for (const auto &profile : profiles) {
            for (size_t c = 0; c < configs.size(); ++c) {
                const SweepResult &r = results[idx++];
                StatsMeta meta = {
                    {"tool", "storemlp_sweep"},
                    {"kind", "run"},
                    {"workload", profile.name},
                    {"config", config_names[c]},
                    {"seed", std::to_string(seed)},
                    {"warmup", std::to_string(warmup)},
                    {"measure", std::to_string(measure)},
                };
                if (!r.ok)
                    meta.push_back({"error", r.errorMessage});
                StatsRegistry reg;
                if (r.ok)
                    r.output.exportStats(reg);
                reg.counter("sweep.run.ok", r.ok ? 1 : 0);
                reg.counter("sweep.run.attempts", r.attempts);
                reg.scalar("sweep.run.wallMs", r.wallMs);
                reg.counter("sweep.run.traceCacheHit",
                            r.traceCacheHit ? 1 : 0);
                writeStatsJson(os, reg, meta, /*pretty=*/false);
            }
        }
        StatsMeta meta = {
            {"tool", "storemlp_sweep"},
            {"kind", "sweep-summary"},
        };
        StatsRegistry reg;
        engine.exportStats(reg);
        writeStatsJson(os, reg, meta, /*pretty=*/false);
        return failed ? 1 : 0;
    }

    size_t idx = 0;
    for (const auto &profile : profiles) {
        TextTable table("Sweep — " + profile.name + " (" +
                        std::to_string(configs.size()) + " configs)");
        table.header({"config", "epochs/1000", "MLP", "store MLP",
                      "off-chip CPI", "overlapped", "wall ms"});
        for (size_t c = 0; c < configs.size(); ++c) {
            const SweepResult &r = results[idx++];
            table.beginRow();
            table.cell(config_names[c]);
            if (!r.ok) {
                table.cell("FAILED");
                for (int k = 0; k < 4; ++k)
                    table.cell("-");
                table.cell(r.wallMs, 1);
                continue;
            }
            table.cell(r.output.sim.epochsPer1000(), 3);
            table.cell(r.output.sim.mlp(), 3);
            table.cell(r.output.sim.storeMlp(), 3);
            table.cell(r.output.sim.offChipCpi(configs[c].missLatency),
                       3);
            table.cell(r.output.sim.overlappedStoreFraction(), 3);
            table.cell(r.wallMs, 1);
        }
        table.print(os);
    }

    if (engine.hasTraceCache()) {
        TraceCacheStats cs = engine.traceCache().stats();
        os << "trace cache: " << cs.hits << " hits, " << cs.misses
           << " misses, " << cs.bytes / (1024 * 1024)
           << " MB resident\n";
    }
    if (failed) {
        os << failed << " of " << results.size()
           << " runs failed:\n";
        for (const SweepResult &r : results) {
            if (!r.ok)
                os << "  " << r.errorMessage << "\n";
        }
    }
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
