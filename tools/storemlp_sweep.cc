/**
 * @file
 * storemlp_sweep: run a whole directory of SimConfig files (e.g.
 * configs/*.cfg) against one or all workloads in a single parallel
 * invocation of the sweep engine. Prints one table per workload
 * (config x headline metrics, with per-run wall-clock), CSV rows, or
 * — with --format=json — one versioned JSON document per run (JSON
 * lines) followed by an engine summary document.
 *
 * The batch is described by a `SweepRequest` built from the shared
 * flag table (sweep_cli.hh) — the same request `storemlp_sweepc`
 * submits to a daemon — and executed through
 * `SweepEngine::execute`, so local and remote runs of one request are
 * the same computation producing bit-identical per-run stats.
 *
 *   storemlp_sweep --dir configs --workload all --jobs 4
 *   storemlp_sweep --dir configs --workload tpcw --format=json
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "cli_util.hh"
#include "core/multi_core.hh"
#include "core/sweep.hh"
#include "stats/stats_json.hh"
#include "stats/table.hh"
#include "sweep_cli.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

/** The --cores axis: contention runs, fanned out per core count. */
int
runCoresSweep(const Cli &cli, const SweepRequest &req)
{
    for (const char *bad : {"epoch-log", "retries", "stream"}) {
        if (cli.has(bad)) {
            cli.fail(std::string("--") + bad +
                     " cannot be combined with --cores");
        }
    }
    // --models still crosses the config axis here, exactly as the
    // request expansion does: names gain "@MODEL", the model overrides
    // the config's own.
    std::vector<SweepConfigEntry> configs;
    if (req.models.empty()) {
        configs = req.configs;
    } else {
        for (const SweepConfigEntry &entry : req.configs) {
            for (size_t mi = 0; mi < req.models.size(); ++mi) {
                ModelDescriptor d =
                    ModelDescriptor::parse(req.models[mi]);
                SweepConfigEntry crossed = entry;
                crossed.config.memoryModel = d;
                crossed.name += "@" +
                    (d.name == "custom"
                         ? "custom" + std::to_string(mi)
                         : d.name);
                configs.push_back(std::move(crossed));
            }
        }
    }

    std::vector<uint32_t> core_counts;
    {
        std::string list = cli.str("cores", "");
        size_t pos = 0;
        while (pos <= list.size()) {
            size_t end = list.find(',', pos);
            std::string tok = list.substr(
                pos, end == std::string::npos ? std::string::npos
                                              : end - pos);
            if (!tok.empty()) {
                std::optional<uint64_t> v = parseU64Strict(tok);
                if (!v || !*v) {
                    cli.fail("bad --cores entry '" + tok +
                             "': expected a positive integer");
                }
                core_counts.push_back(static_cast<uint32_t>(*v));
            }
            if (end == std::string::npos)
                break;
            pos = end + 1;
        }
        if (core_counts.empty())
            cli.fail("--cores requires at least one core count");
    }
    uint64_t chips_flag = cli.num("chips", 0);

    struct McRun
    {
        const SweepConfigEntry *entry;
        std::string workload;
        uint32_t cores;
        std::string name;
        MultiRunOutput output;
        double wallMs = 0.0;
        bool ok = false;
        std::string errorMessage;
    };
    std::vector<McRun> runs;
    for (const std::string &wl : req.workloads) {
        (void)workloadProfileForName(wl);
        for (const SweepConfigEntry &entry : configs) {
            for (uint32_t n : core_counts) {
                if (chips_flag > n) {
                    cli.fail("--chips " + std::to_string(chips_flag) +
                             " exceeds core count " +
                             std::to_string(n));
                }
                McRun r;
                r.entry = &entry;
                r.workload = wl;
                r.cores = n;
                r.name = wl + "_" + entry.name +
                    "@cores=" + std::to_string(n);
                runs.push_back(std::move(r));
            }
        }
    }

    std::optional<double> shared_frac;
    if (cli.has("shared-frac"))
        shared_frac = cli.fnum("shared-frac", 0.0);
    std::optional<double> lock_prob;
    if (cli.has("lock-prob"))
        lock_prob = cli.fnum("lock-prob", 0.0);
    uint64_t quantum = cli.num("quantum", 256);

    std::vector<std::function<void()>> tasks;
    for (McRun &r : runs) {
        tasks.push_back([&r, &req, chips_flag, quantum, shared_frac,
                         lock_prob] {
            MultiRunSpec spec;
            spec.profile = workloadProfileForName(r.workload);
            spec.config = r.entry->config;
            spec.seed = req.seed;
            spec.warmupInsts = req.warmupInsts;
            spec.measureInsts = req.measureInsts;
            spec.quantum = quantum;
            spec.cores = r.cores;
            spec.chips = chips_flag
                ? static_cast<uint32_t>(chips_flag)
                : r.cores;
            spec.sharedStoreFrac = shared_frac;
            spec.lockProb = lock_prob;
            spec.chunkInsts = req.chunkInsts;
            auto t0 = std::chrono::steady_clock::now();
            r.output = MultiCoreRunner::run(spec);
            r.wallMs = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
            r.ok = true;
        });
    }

    // Not RunSpec-shaped, so the runs go through the generic task
    // fan-out; slots are indexed, keeping results in submission order
    // regardless of --jobs.
    unsigned jobs = static_cast<unsigned>(cli.num("jobs", 0));
    std::vector<TaskStatus> statuses = parallelForEach(tasks, jobs);
    size_t failed = 0;
    for (size_t i = 0; i < runs.size(); ++i) {
        if (!statuses[i].ok) {
            runs[i].errorMessage = statuses[i].errorMessage;
            ++failed;
        }
    }

    OutFormat fmt = outFormat(cli);
    OutputSink sink(cli);
    std::ostream &os = sink.stream();

    if (fmt == OutFormat::Csv) {
        os << "workload,config,cores,chips,epochs_per_1000,"
              "mean_offchip_cpi,bus_invalidations,"
              "bus_inval_per_1000,bus_dirty_transfers,wall_ms,"
              "ok\n";
        for (const McRun &r : runs) {
            os << r.workload << "," << r.entry->name << "@cores="
               << r.cores << "," << r.cores << ","
               << (chips_flag ? chips_flag : r.cores) << ","
               << r.output.combinedEpochsPer1000() << ","
               << r.output.meanOffChipCpi(r.entry->config.missLatency)
               << "," << r.output.busInvalidations << ","
               << r.output.busInvalidationsPer1000() << ","
               << r.output.busDirtyTransfers << "," << r.wallMs << ","
               << (r.ok ? 1 : 0) << "\n";
        }
        for (const McRun &r : runs) {
            if (!r.ok)
                std::cerr << "error: " << r.errorMessage << "\n";
        }
        return failed ? 1 : 0;
    }

    if (fmt == OutFormat::Json) {
        for (const McRun &r : runs) {
            StatsMeta meta = {
                {"tool", "storemlp_sweep"},
                {"kind", "run"},
                {"mode", "multicore"},
                {"workload", r.workload},
                {"config", r.entry->name},
                {"run", r.name},
                {"cores", std::to_string(r.cores)},
                {"chips", std::to_string(
                              chips_flag ? chips_flag : r.cores)},
                {"seed", std::to_string(req.seed)},
                {"warmup", std::to_string(req.warmupInsts)},
                {"measure", std::to_string(req.measureInsts)},
            };
            if (!r.ok)
                meta.push_back({"error", r.errorMessage});
            StatsRegistry reg;
            if (r.ok)
                r.output.exportStats(reg);
            reg.counter("sweep.run.ok", r.ok ? 1 : 0);
            reg.scalar("sweep.run.wallMs", r.wallMs);
            writeStatsJson(os, reg, meta, /*pretty=*/false);
        }
        StatsMeta meta = {
            {"tool", "storemlp_sweep"},
            {"kind", "sweep-summary"},
            {"mode", "multicore"},
        };
        SweepOptions sopts;
        sopts.jobs = jobs;
        SweepEngine engine(sopts);
        StatsRegistry reg;
        engine.exportStats(reg);
        writeStatsJson(os, reg, meta, /*pretty=*/false);
        return failed ? 1 : 0;
    }

    size_t idx = 0;
    for (const std::string &wl : req.workloads) {
        TextTable table(
            "Multi-core sweep — " + wl + " (" +
            std::to_string(configs.size()) + " configs x " +
            std::to_string(core_counts.size()) + " core counts)");
        table.header({"run", "epochs/1000", "off-chip CPI",
                      "bus inval/1000", "dirty xfers", "wall ms"});
        for (size_t c = 0; c < configs.size(); ++c) {
            for (size_t n = 0; n < core_counts.size(); ++n) {
                const McRun &r = runs[idx++];
                table.beginRow();
                table.cell(r.entry->name + "@cores=" +
                           std::to_string(r.cores));
                if (!r.ok) {
                    table.cell("FAILED");
                    for (int k = 0; k < 3; ++k)
                        table.cell("-");
                    table.cell(r.wallMs, 1);
                    continue;
                }
                table.cell(r.output.combinedEpochsPer1000(), 3);
                table.cell(r.output.meanOffChipCpi(
                               r.entry->config.missLatency),
                           3);
                table.cell(r.output.busInvalidationsPer1000(), 3);
                table.cell(static_cast<double>(
                               r.output.busDirtyTransfers),
                           0);
                table.cell(r.wallMs, 1);
            }
        }
        table.print(os);
    }
    if (failed) {
        os << failed << " of " << runs.size() << " runs failed:\n";
        for (const McRun &r : runs) {
            if (!r.ok)
                os << "  " << r.name << ": " << r.errorMessage << "\n";
        }
    }
    return failed ? 1 : 0;
}

int
toolMain(int argc, char **argv)
{
    std::vector<FlagSpec> flags = sweepRequestFlags();
    flags.insert(flags.end(), {
        {"cores", "LIST",
         "sweep the core-count axis: run every (workload, config)\n"
         "point on the N-core contention runner for each core count\n"
         "in LIST (comma-separated, e.g. 1,2,4,8); run names become\n"
         "config@cores=N"},
        {"chips", "N",
         "chips for --cores runs (default: one chip per core);\n"
         "cores are assigned round-robin"},
        {"quantum", "N",
         "interleaving quantum for --cores runs (default 256)"},
        {"shared-frac", "F",
         "shared-store fraction override for --cores runs"},
        {"lock-prob", "F",
         "lock-density override for --cores runs"},
        kJobsFlag,
        {"no-trace-cache", "", "rebuild the trace for every run"},
        {"epoch-log", "DIR",
         "write one JSON-lines epoch trace per run into DIR"},
        kFormatFlag, kOutFlag,
    });
    Cli cli(argc, argv, std::move(flags));

    SweepRequest req = sweepRequestFromFlags(cli);

    if (cli.has("cores"))
        return runCoresSweep(cli, req);

    // Expand exactly like the engine / daemon would; the planned runs
    // keep their specs accessible so per-run epoch logs can attach.
    std::vector<PlannedRun> planned;
    try {
        planned = expandSweepRuns(req);
    } catch (const ConfigError &e) {
        cli.fail(e.what());
    }

    // One epoch-log stream per run: the workers run concurrently, so
    // the runs cannot share a sink.
    std::vector<std::unique_ptr<std::ofstream>> epoch_logs;
    if (cli.has("epoch-log")) {
        std::filesystem::path log_dir = cli.str("epoch-log", "");
        std::error_code ec;
        std::filesystem::create_directories(log_dir, ec);
        if (ec)
            cli.fail("cannot create --epoch-log directory '" +
                     log_dir.string() + "': " + ec.message());
        for (PlannedRun &run : planned) {
            auto log = std::make_unique<std::ofstream>(
                log_dir / (run.name + ".epochs.jsonl"));
            if (!*log)
                cli.fail("cannot open epoch log for run '" + run.name +
                         "'");
            run.spec.epochLog = log.get();
            epoch_logs.push_back(std::move(log));
        }
    }

    SweepOptions opts;
    if (cli.has("jobs"))
        opts.jobs = static_cast<unsigned>(cli.num("jobs", 0));
    opts.useTraceCache = !cli.flag("no-trace-cache");
    applyRequestOptions(opts, req);
    SweepEngine engine(opts);
    std::vector<RunOutcome> results = engine.execute(planned);

    // Fault containment: failed runs are reported (and fail the exit
    // code) but never discard the completed results.
    size_t failed = 0;
    for (const RunOutcome &r : results)
        failed += r.ok ? 0 : 1;

    OutFormat fmt = outFormat(cli);
    OutputSink sink(cli);
    std::ostream &os = sink.stream();

    if (fmt == OutFormat::Csv) {
        os << "workload,config,epochs_per_1000,mlp,store_mlp,"
              "offchip_cpi,overlapped_frac,wall_ms,"
              "trace_cache_hit,ok\n";
        for (size_t i = 0; i < results.size(); ++i) {
            const RunOutcome &r = results[i];
            uint32_t miss_latency = planned[i].spec.config.missLatency;
            os << r.workload << ","
               << runConfigLabel(r.configName, r.model) << ","
               << r.output.sim.epochsPer1000() << ","
               << r.output.sim.mlp() << "," << r.output.sim.storeMlp()
               << "," << r.output.sim.offChipCpi(miss_latency) << ","
               << r.output.sim.overlappedStoreFraction() << ","
               << r.wallMs << "," << (r.traceCacheHit ? 1 : 0) << ","
               << (r.ok ? 1 : 0) << "\n";
        }
        for (const RunOutcome &r : results) {
            if (!r.ok)
                std::cerr << "error: " << r.errorMessage << "\n";
        }
        return failed ? 1 : 0;
    }

    if (fmt == OutFormat::Json) {
        // JSON lines: one compact schemaVersion-2 document per run —
        // the same documents a sweep daemon streams for this request,
        // produced by the same runOutcomeJson — then an engine
        // summary document (trace-cache sharing, job count, retry
        // policy).
        ArtifactSource src;
        src.tool = "storemlp_sweep";
        src.host = localHostName();
        src.requestFingerprint = sweepRequestFingerprint(req);
        for (const RunOutcome &r : results) {
            os << runOutcomeJson(r, src, req.seed, req.warmupInsts,
                                 req.measureInsts);
        }
        StatsMeta meta = {
            {"tool", "storemlp_sweep"},
            {"kind", "sweep-summary"},
        };
        StatsRegistry reg;
        engine.exportStats(reg);
        writeStatsJson(os, reg, meta, /*pretty=*/false);
        return failed ? 1 : 0;
    }

    size_t idx = 0;
    for (const std::string &wl : req.workloads) {
        size_t per_wl = results.size() / req.workloads.size();
        TextTable table("Sweep — " + wl + " (" +
                        std::to_string(per_wl) + " configs)");
        table.header({"config", "epochs/1000", "MLP", "store MLP",
                      "off-chip CPI", "overlapped", "wall ms"});
        for (size_t c = 0; c < per_wl; ++c) {
            const RunOutcome &r = results[idx];
            uint32_t miss_latency =
                planned[idx].spec.config.missLatency;
            ++idx;
            table.beginRow();
            table.cell(runConfigLabel(r.configName, r.model));
            if (!r.ok) {
                table.cell("FAILED");
                for (int k = 0; k < 4; ++k)
                    table.cell("-");
                table.cell(r.wallMs, 1);
                continue;
            }
            table.cell(r.output.sim.epochsPer1000(), 3);
            table.cell(r.output.sim.mlp(), 3);
            table.cell(r.output.sim.storeMlp(), 3);
            table.cell(r.output.sim.offChipCpi(miss_latency), 3);
            table.cell(r.output.sim.overlappedStoreFraction(), 3);
            table.cell(r.wallMs, 1);
        }
        table.print(os);
    }

    if (engine.hasTraceCache()) {
        TraceCacheStats cs = engine.traceCache().stats();
        os << "trace cache: " << cs.hits << " hits, " << cs.misses
           << " misses, " << cs.bytes / (1024 * 1024)
           << " MB resident\n";
    }
    if (failed) {
        os << failed << " of " << results.size() << " runs failed:\n";
        for (const RunOutcome &r : results) {
            if (!r.ok)
                os << "  " << r.errorMessage << "\n";
        }
    }
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
