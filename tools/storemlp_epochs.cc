/**
 * @file
 * storemlp_epochs: a Figure-1-style timeline view — stream the first
 * N counted epochs of a run, one line each, with cause and
 * composition. The fastest way to see *why* a configuration stalls.
 *
 *   storemlp_epochs --workload specweb --count 25
 */

#include <iomanip>
#include <iostream>

#include "cli_util.hh"
#include "coherence/chip.hh"
#include "core/mlp_sim.hh"
#include "trace/generator.hh"
#include "trace/lock_detector.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

const char *kUsage =
    "  --workload database|tpcw|specjbb|specweb   (default database)\n"
    "  --count N             epochs to print (default 30)\n"
    "  --prefetch sp0|sp1|sp2                     (default sp1)\n"
    "  --warmup N            instructions before printing (default 600K)\n"
    "  --seed N\n";

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, kUsage);
    WorkloadProfile profile =
        workloadByName(cli, cli.str("workload", "database"));
    uint64_t count = cli.num("count", 30);
    uint64_t warmup = cli.num("warmup", 600 * 1000);

    SimConfig cfg;
    std::string sp = cli.str("prefetch", "sp1");
    if (sp == "sp0")
        cfg.storePrefetch = StorePrefetch::None;
    else if (sp == "sp2")
        cfg.storePrefetch = StorePrefetch::AtExecute;
    cfg.cpiOnChip = profile.cpiOnChip;

    SyntheticTraceGenerator gen(profile, cli.num("seed", 42));
    Trace trace = gen.generate(warmup + 400 * 1000);
    LockAnalysis locks = LockDetector().analyze(trace);

    ChipNode chip(HierarchyConfig{}, 0);
    MlpSimulator sim(cfg, chip, &locks);

    std::cout << "epoch timeline — " << profile.name << ", "
              << storePrefetchName(cfg.storePrefetch)
              << " (after " << warmup << " warmup instructions)\n\n"
              << std::left << std::setw(6) << "#" << std::setw(12)
              << "trace idx" << std::setw(12) << "stall len"
              << std::setw(22) << "cause" << "misses "
              << "(ld/st/if)\n";

    uint64_t printed = 0;
    double prev_resolve = 0.0;
    sim.setEpochListener([&](const EpochRecord &rec) {
        if (printed >= count)
            return;
        double gap = rec.startCycle - prev_resolve;
        prev_resolve = rec.resolveCycle;
        std::cout << std::left << std::setw(6) << printed
                  << std::setw(12) << rec.triggerIdx << std::setw(12)
                  << static_cast<uint64_t>(rec.resolveCycle -
                                           rec.startCycle)
                  << std::setw(22) << termCondName(rec.cause)
                  << rec.loads << "/" << rec.stores << "/"
                  << rec.insts;
        if (printed > 0)
            std::cout << "   (+" << static_cast<uint64_t>(gap)
                      << "cy compute)";
        std::cout << "\n";
        ++printed;
    });

    sim.process(trace, 0, warmup, false);
    sim.process(trace, warmup, trace.size(), true);
    SimResult res = sim.takeResult();

    std::cout << "\n" << res.epochs << " epochs in "
              << res.instructions << " instructions ("
              << res.epochsPer1000() << " per 1000), MLP "
              << res.mlp() << "\n";
    return 0;
}
