/**
 * @file
 * storemlp_epochs: a Figure-1-style timeline view — stream the first
 * N counted epochs of a run, one line each, with cause and
 * composition. The fastest way to see *why* a configuration stalls.
 * --format=json emits the same epochs as JSON lines (the epoch-log
 * record shape) followed by a versioned run summary document.
 *
 *   storemlp_epochs --workload specweb --count 25
 */

#include <iomanip>
#include <iostream>

#include "cli_util.hh"
#include "coherence/chip.hh"
#include "core/epoch_log.hh"
#include "core/mlp_sim.hh"
#include "stats/stats_json.hh"
#include "trace/generator.hh"
#include "trace/lock_detector.hh"

using namespace storemlp;
using namespace storemlp::tools;

namespace
{

int
toolMain(int argc, char **argv)
{
    Cli cli(argc, argv, {
        {"workload", "database|tpcw|specjbb|specweb",
         "workload profile (default database)"},
        {"count", "N", "epochs to print (default 30)"},
        {"prefetch", "sp0|sp1|sp2",
         "store prefetch policy (default sp1)"},
        kWarmupFlag, kSeedFlag,
        kFormatFlag, kOutFlag,
    });
    WorkloadProfile profile =
        workloadByName(cli, cli.str("workload", "database"));
    uint64_t count = cli.num("count", 30);
    uint64_t warmup = cli.num("warmup", 600 * 1000);

    SimConfig cfg;
    std::string sp = cli.str("prefetch", "sp1");
    if (sp == "sp0")
        cfg.storePrefetch = StorePrefetch::None;
    else if (sp == "sp2")
        cfg.storePrefetch = StorePrefetch::AtExecute;
    cfg.cpiOnChip = profile.cpiOnChip;

    SyntheticTraceGenerator gen(profile, cli.num("seed", 42));
    Trace trace = gen.generate(warmup + 400 * 1000);
    LockAnalysis locks = LockDetector().analyze(trace);

    ChipNode chip(HierarchyConfig{}, 0);
    MlpSimulator sim(cfg, chip, &locks);

    OutFormat fmt = outFormat(cli);
    OutputSink sink(cli);
    std::ostream &os = sink.stream();

    if (fmt == OutFormat::Text) {
        os << "epoch timeline — " << profile.name << ", "
           << storePrefetchName(cfg.storePrefetch)
           << " (after " << warmup << " warmup instructions)\n\n"
           << std::left << std::setw(6) << "#" << std::setw(12)
           << "trace idx" << std::setw(12) << "stall len"
           << std::setw(22) << "cause" << "misses "
           << "(ld/st/if)\n";
    } else if (fmt == OutFormat::Csv) {
        os << "epoch,trace_idx,stall_len,cause,miss_loads,"
              "miss_stores,miss_insts,sb_occupancy\n";
    }

    EpochLogWriter log(os);
    uint64_t printed = 0;
    double prev_resolve = 0.0;
    sim.setEpochListener([&](const EpochRecord &rec) {
        if (printed >= count)
            return;
        double gap = rec.startCycle - prev_resolve;
        prev_resolve = rec.resolveCycle;
        switch (fmt) {
          case OutFormat::Json:
            log.write(rec);
            break;
          case OutFormat::Csv:
            os << printed << "," << rec.triggerIdx << ","
               << static_cast<uint64_t>(rec.resolveCycle -
                                        rec.startCycle)
               << "," << termCondName(rec.cause) << "," << rec.loads
               << "," << rec.stores << "," << rec.insts << ","
               << rec.sbOccupancy << "\n";
            break;
          case OutFormat::Text:
            os << std::left << std::setw(6) << printed
               << std::setw(12) << rec.triggerIdx << std::setw(12)
               << static_cast<uint64_t>(rec.resolveCycle -
                                        rec.startCycle)
               << std::setw(22) << termCondName(rec.cause)
               << rec.loads << "/" << rec.stores << "/"
               << rec.insts;
            if (printed > 0)
                os << "   (+" << static_cast<uint64_t>(gap)
                   << "cy compute)";
            os << "\n";
            break;
        }
        ++printed;
    });

    sim.process(trace, 0, warmup, false);
    sim.process(trace, warmup, trace.size(), true);
    SimResult res = sim.takeResult();

    if (fmt == OutFormat::Json) {
        StatsMeta meta = {
            {"tool", "storemlp_epochs"},
            {"kind", "run"},
            {"workload", profile.name},
            {"prefetch", storePrefetchName(cfg.storePrefetch)},
            {"warmup", std::to_string(warmup)},
        };
        StatsRegistry reg;
        res.exportStats(reg);
        writeStatsJson(os, reg, meta, /*pretty=*/false);
        return 0;
    }
    if (fmt == OutFormat::Csv)
        return 0;

    os << "\n" << res.epochs << " epochs in "
       << res.instructions << " instructions ("
       << res.epochsPer1000() << " per 1000), MLP "
       << res.mlp() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return runTool(argv[0], toolMain, argc, argv);
}
